"""Golden snapshot: the single-host baseline is bit-identical.

The componentized graph (PR 3) must not perturb the paper's
single-receiver setup: every metric of a short baseline run is pinned
to ``tests/data/golden_single_host.json``.  Any change to event
ordering, RNG draw order, or metric naming shows up here as a diff.

Regenerate (only after an *intentional* behaviour change)::

    PYTHONPATH=src python tests/data/make_golden.py
"""

import json
from pathlib import Path

from repro.core.experiment import ExperimentHandle
from repro.core.sweep import baseline_config
from repro.core.topology import GraphBuilder
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.workload.remote_read import RemoteReadWorkload

GOLDEN = Path(__file__).parent / "data" / "golden_single_host.json"


def golden_run():
    handle = ExperimentHandle(baseline_config(
        warmup=1e-3, duration=2e-3, seed=1))
    handle.run_warmup()
    handle.run_measurement()
    result = handle.collect()
    return {
        "params": result.params,
        "metrics": result.metrics,
        "message_latency_us": result.message_latency_us,
        "registry": handle.metrics.snapshot(),
    }


def test_single_host_run_matches_golden_snapshot():
    expected = json.loads(GOLDEN.read_text())
    actual = json.loads(json.dumps(golden_run()))
    for section in expected:
        assert actual[section] == expected[section], (
            f"{section} diverged from tests/data/golden_single_host.json; "
            "if the behaviour change is intentional, regenerate with "
            "tests/data/make_golden.py")


def test_topology_equals_direct_workload_build():
    # Topology(M=1) and the legacy RemoteReadWorkload facade construct
    # the same graph: identical event/RNG order, identical results.
    config = baseline_config(warmup=1e-3, duration=2e-3, seed=1)

    sim_a = Simulator()
    topology = GraphBuilder(config).build(sim_a)
    reg_a = MetricsRegistry()
    topology.bind_metrics(reg_a)
    sim_a.run(until=config.sim.end_time)

    sim_b = Simulator()
    workload = RemoteReadWorkload(sim_b, config)
    reg_b = MetricsRegistry()
    workload.bind_metrics(reg_b)
    sim_b.run(until=config.sim.end_time)

    assert reg_a.snapshot() == reg_b.snapshot()
    assert topology.snapshot() == workload.host.snapshot()
    assert sim_a.events_dispatched == sim_b.events_dispatched
