"""Tests for sawtooth/convergence analysis, including the paper's
sawtooth claim demonstrated end-to-end."""

import math

import pytest

from repro.analysis.convergence import (
    convergence_time,
    sawtooth_metrics,
)


class TestSawtoothMetrics:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            sawtooth_metrics([0, 1], [1, 2, 3])

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            sawtooth_metrics([0, 1], [1, 2])

    def test_flat_series_not_oscillating(self):
        times = [i * 0.1 for i in range(20)]
        metrics = sawtooth_metrics(times, [5.0] * 20)
        assert metrics.amplitude == 0.0
        assert not metrics.oscillating
        assert metrics.period is None

    def test_sine_wave_detected(self):
        times = [i * 0.01 for i in range(400)]
        values = [10 + 5 * math.sin(2 * math.pi * t) for t in times]
        metrics = sawtooth_metrics(times, values)
        assert metrics.oscillating
        assert metrics.cycles == pytest.approx(4, abs=1)
        assert metrics.period == pytest.approx(1.0, rel=0.1)
        assert metrics.amplitude == pytest.approx(10.0, rel=0.1)

    def test_relative_amplitude_zero_mean(self):
        times = [0, 1, 2, 3]
        metrics = sawtooth_metrics(times, [-1, 1, -1, 1])
        assert metrics.relative_amplitude == 0.0  # guarded division


class TestConvergenceTime:
    def test_settled_series_converges_at_start(self):
        times = list(range(10))
        assert convergence_time(times, [5.0] * 10) == 0

    def test_step_series_converges_after_step(self):
        times = list(range(10))
        values = [0.0] * 5 + [10.0] * 5
        assert convergence_time(times, values) == 5

    def test_never_settling_returns_none(self):
        times = list(range(100))
        values = [(-1) ** i * 10.0 + 20 for i in range(100)]
        assert convergence_time(times, values, tolerance=0.05) is None

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            convergence_time([0, 1], [1, 2], window=5)


class TestPaperSawtooth:
    """The paper §3.1: Swift shows sawtooth behaviour under host
    congestion (rate cut → delay falls → rate grows → drops again)."""

    @pytest.fixture(scope="class")
    def buffer_series(self):
        from repro.core.config import (
            CpuConfig,
            ExperimentConfig,
            HostConfig,
            SimConfig,
        )
        from repro.core.experiment import ExperimentHandle
        from repro.core.metrics import TimeSeriesRecorder

        def record(transport):
            config = ExperimentConfig(
                host=HostConfig(cpu=CpuConfig(cores=12)),
                transport=transport,
                sim=SimConfig(warmup=3e-3, duration=8e-3, seed=1))
            handle = ExperimentHandle(config)
            recorder = TimeSeriesRecorder(
                handle.sim, 0.1e-3,
                probe=lambda: {
                    "buffer": handle.host.nic.buffer_fraction()})
            handle.run_warmup()
            recorder.start()
            handle.run_measurement()
            return recorder.times, recorder.series("buffer")

        return {t: record(t) for t in ("swift", "hostcc")}

    def test_swift_buffer_oscillates_near_full(self, buffer_series):
        times, values = buffer_series["swift"]
        metrics = sawtooth_metrics(times, values)
        assert metrics.mean > 0.5          # pinned high (blind spot)
        assert metrics.cycles >= 3         # sawtooth present

    def test_hostcc_holds_buffer_lower_and_steadier(self, buffer_series):
        swift = sawtooth_metrics(*buffer_series["swift"])
        hostcc = sawtooth_metrics(*buffer_series["hostcc"])
        assert hostcc.mean < swift.mean
