"""Shrunk-grid fluid-vs-packet cross-validation.

The full bundled-spec agreement matrix runs in the ``fluid-xval`` CI
job (``scripts/check_fluid_xval.py``); these tests hold the same
contracts — knees, winners, throughput tolerances from
:mod:`repro.analysis.xval` — on grids small enough for tier-1.
"""

import dataclasses

import pytest

from repro.analysis import xval
from repro.core.sweep import (
    baseline_config,
    sweep_receiver_cores,
)
from repro.workload.day import diurnal_schedule, simulate_day
from repro.workload.fleet import FleetSampler
from repro.workload.isolation import congested_vs_uncongested

CORES = (2, 8, 12, 16)


def _base(fidelity, warmup=1e-3, duration=3e-3):
    return baseline_config(warmup=warmup, duration=duration,
                           fidelity=fidelity)


def _assert_agrees(report):
    assert report.ok, "\n".join(
        d.format_row() for d in report.disagreements)


@pytest.fixture(scope="module")
def sweep_tables():
    packet = sweep_receiver_cores(cores=CORES, base=_base("packet"))
    fluid = sweep_receiver_cores(cores=CORES, base=_base("fluid"))
    return packet, fluid


def test_sweep_throughput_and_knees_agree(sweep_tables):
    packet, fluid = sweep_tables
    report = xval.compare_sweep("shrunk_figure3", packet, fluid,
                                "cores")
    _assert_agrees(report)
    # Both throughput points and per-series drop onsets were checked.
    assert report.checks >= len(packet) + 2


def test_sweep_agreement_is_not_vacuous(sweep_tables):
    """The shrunk grid must actually cross the IOTLB knee at high core
    counts (paper Fig. 3), or the onset check compares nothing."""
    packet, _ = sweep_tables
    iommu_drops = [r.metrics["drop_rate"] for r in packet
                   if r.params["iommu"]]
    assert xval.drop_onset(iommu_drops) is not None


def test_isolation_winner_agrees():
    packet = congested_vs_uncongested(_base("packet"))
    fluid = congested_vs_uncongested(_base("fluid"))
    report = xval.compare_isolation("shrunk_isolation", packet, fluid)
    _assert_agrees(report)


def test_day_bins_agree():
    schedule = diurnal_schedule(6, seed=0)

    def run(fidelity):
        config = _base(fidelity)
        config = dataclasses.replace(
            config, workload=dataclasses.replace(
                config.workload, offered_load=0.6))
        return simulate_day(config, schedule, bin_duration=2e-3,
                            warmup_per_bin=5e-4)

    report = xval.compare_day("shrunk_day", run("packet"),
                              run("fluid"))
    _assert_agrees(report)


def test_fleet_shapes_agree():
    # 24 hosts: large enough that both engines sample a few droppers
    # (12 hosts at 2 ms leaves the deterministic fluid population
    # drop-free and degenerates the correlation check).
    def run(fidelity):
        sampler = FleetSampler(seed=7, warmup=1e-3, duration=3e-3,
                               fidelity=fidelity)
        return sampler.run(24, workers="auto")

    report = xval.compare_fleet("shrunk_fleet", run("packet"),
                                run("fluid"))
    _assert_agrees(report)


def test_fleet_aggregates_agree():
    """The streaming-aggregate contract on the same shrunk fleet: the
    path `repro fleet` and CI's fluid-xval actually exercise."""
    def run(fidelity):
        sampler = FleetSampler(seed=7, warmup=1e-3, duration=3e-3,
                               fidelity=fidelity)
        return sampler.run_aggregate(24, shards=2)

    report = xval.compare_fleet_aggregate("shrunk_fleet_agg",
                                          run("packet"), run("fluid"))
    _assert_agrees(report)
    # Per-stratum checks actually ran: 4 strata in a 24-host draw.
    points = {d.point for d in report.disagreements}
    assert report.checks >= 3 + 2 * len(FleetSampler.STRATA), points


# -- contract unit checks (no simulation) --------------------------------


def test_drop_onset_finds_first_crossing():
    assert xval.drop_onset([0.0, 0.001, 0.05, 0.3]) == 2
    assert xval.drop_onset([0.0, 0.0]) is None


def _make_bin(index, gbps):
    from repro.workload.day import DayBin

    return DayBin(index=index, offered_load=0.5, antagonist_cores=0,
                  link_utilization=0.5, drop_rate=0.0,
                  app_throughput_gbps=gbps)


def test_day_cumulative_escape_hatch():
    """A backlog drain landing one bin apart fails per-bin rtol but
    passes on cumulative delivered work."""
    packet = [_make_bin(0, 40.0), _make_bin(1, 80.0)]
    fluid = [_make_bin(0, 80.0), _make_bin(1, 40.0)]
    report = xval.compare_day("synthetic", packet, fluid)
    assert report.disagreements == [
        d for d in report.disagreements if d.point.startswith("bin=0")]
    # Bin 1 recovers via the cumulative check (120 vs 120).
    assert all("bin=1" not in d.point for d in report.disagreements)


def test_day_capacity_error_is_not_excused():
    """A persistent throughput gap fails even with the cumulative
    escape hatch: it is a capacity error, not timing skew."""
    packet = [_make_bin(i, 80.0) for i in range(4)]
    fluid = [_make_bin(i, 40.0) for i in range(4)]
    report = xval.compare_day("synthetic", packet, fluid)
    assert len(report.disagreements) == 4
