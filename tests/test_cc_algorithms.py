"""Unit tests for the congestion-control algorithms."""

import pytest

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.cubic import CubicCC
from repro.transport.dctcp import DctcpCC
from repro.transport.hostcc import HostSignalCC
from repro.transport.swift import SwiftCC, make_cc


def ack(host_delay=5e-6, ecn=False, buffer_fraction=0.0, mem_util=0.0):
    a = Ack(flow_id=0, seq=0, sent_time_echo=0.0, host_delay=host_delay,
            ecn_echo=ecn)
    a.nic_buffer_fraction = buffer_fraction
    a.memory_utilization = mem_util
    return a


BASE_RTT = 25e-6


class TestSwift:
    def test_increase_below_targets(self):
        cc = SwiftCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT, ack(host_delay=5e-6), now=1e-3)
        assert cc.cwnd() > before

    def test_decrease_when_host_delay_exceeds_target(self):
        cfg = SwiftConfig()
        cc = SwiftCC(cfg, initial_cwnd=4.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT + 300e-6, ack(host_delay=300e-6), now=1e-3)
        assert cc.cwnd() < before
        assert cc.host_triggered_decreases == 1

    def test_decrease_proportional_to_excess_and_capped(self):
        cfg = SwiftConfig(beta=0.8, max_mdf=0.5)
        cc = SwiftCC(cfg, initial_cwnd=4.0)
        cc.on_ack(BASE_RTT + 10e-3, ack(host_delay=10e-3), now=1e-3)
        # Huge excess: capped at max_mdf.
        assert cc.cwnd() == pytest.approx(4.0 * 0.5)

    def test_decrease_at_most_once_per_rtt(self):
        cc = SwiftCC(SwiftConfig(), initial_cwnd=4.0)
        cc.on_ack(BASE_RTT + 300e-6, ack(host_delay=300e-6), now=1e-3)
        mid = cc.cwnd()
        cc.on_ack(BASE_RTT + 300e-6, ack(host_delay=300e-6),
                  now=1e-3 + 1e-6)
        assert cc.cwnd() == mid  # too soon to decrease again

    def test_blind_below_host_target(self):
        # Host delay of 90 µs is under the 100 µs target: Swift keeps
        # increasing — the paper's blind spot.
        cc = SwiftCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT + 90e-6, ack(host_delay=90e-6), now=1e-3)
        assert cc.cwnd() > before

    def test_fabric_hold_band_neither_grows_nor_cuts(self):
        cfg = SwiftConfig(hold_threshold=0.85, flow_scaling_alpha=0.0)
        cc = SwiftCC(cfg, initial_cwnd=2.0)
        # fabric delay at 0.9 of target: hold.
        fabric_delay = 0.9 * cfg.fabric_target
        before = cc.cwnd()
        cc.on_ack(fabric_delay + 1e-6, ack(host_delay=1e-6), now=1e-3)
        assert cc.cwnd() == before

    def test_flow_scaling_raises_target_for_small_windows(self):
        cfg = SwiftConfig()
        small = SwiftCC(cfg, initial_cwnd=cfg.min_cwnd)
        large = SwiftCC(cfg, initial_cwnd=64.0)
        assert small.fabric_target() > large.fabric_target()
        assert small.fabric_target() <= (cfg.fabric_target
                                         + cfg.flow_scaling_max)

    def test_loss_cut(self):
        cfg = SwiftConfig(max_mdf=0.5)
        cc = SwiftCC(cfg, initial_cwnd=4.0)
        cc.on_loss(now=1e-3)
        assert cc.cwnd() == pytest.approx(2.0)

    def test_timeout_collapses_to_min(self):
        cfg = SwiftConfig()
        cc = SwiftCC(cfg, initial_cwnd=4.0)
        cc.on_timeout(now=1e-3)
        assert cc.cwnd() == cfg.min_cwnd

    def test_cwnd_clamped_to_bounds(self):
        cfg = SwiftConfig(min_cwnd=0.1, max_cwnd=8.0)
        cc = SwiftCC(cfg, initial_cwnd=100.0)
        assert cc.cwnd() == 8.0
        for _ in range(100):
            cc.on_timeout(now=1.0)
        assert cc.cwnd() >= 0.1


class TestDctcp:
    def test_grows_without_marks(self):
        cc = DctcpCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        for i in range(5):
            cc.on_ack(BASE_RTT, ack(), now=i * 1e-4)
        assert cc.cwnd() > before

    def test_alpha_rises_with_marks_and_cuts(self):
        cc = DctcpCC(SwiftConfig(), initial_cwnd=8.0)
        for i in range(50):
            cc.on_ack(BASE_RTT, ack(ecn=True), now=i * 1e-4)
        assert cc.alpha > 0.5
        assert cc.cwnd() < 8.0

    def test_ignores_host_delay(self):
        # DCTCP is blind to host congestion: huge host delay, no ECN.
        cc = DctcpCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT + 10e-3, ack(host_delay=10e-3), now=1e-3)
        assert cc.cwnd() > before

    def test_loss_halves_once_per_rtt(self):
        cc = DctcpCC(SwiftConfig(), initial_cwnd=8.0)
        cc.on_loss(now=1e-3)
        assert cc.cwnd() == pytest.approx(4.0)
        cc.on_loss(now=1e-3 + 1e-6)
        assert cc.cwnd() == pytest.approx(4.0)


class TestCubic:
    def test_grows_toward_cubic_target(self):
        cc = CubicCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        for i in range(20):
            cc.on_ack(BASE_RTT, ack(), now=i * 1e-3)
        assert cc.cwnd() > before

    def test_loss_applies_beta(self):
        cc = CubicCC(SwiftConfig(), initial_cwnd=10.0)
        cc.on_loss(now=1e-3)
        assert cc.cwnd() == pytest.approx(7.0)

    def test_ignores_delay_entirely(self):
        cc = CubicCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT + 50e-3, ack(host_delay=50e-3), now=1e-3)
        assert cc.cwnd() >= before

    def test_timeout_collapse_and_recovery_epoch(self):
        cc = CubicCC(SwiftConfig(), initial_cwnd=10.0)
        cc.on_timeout(now=1e-3)
        assert cc.cwnd() == SwiftConfig().min_cwnd
        cc.on_ack(BASE_RTT, ack(), now=2e-3)
        assert cc.cwnd() >= SwiftConfig().min_cwnd


class TestHostSignal:
    def test_sub_rtt_response_to_buffer_signal(self):
        cc = HostSignalCC(SwiftConfig(), initial_cwnd=4.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT, ack(buffer_fraction=0.9), now=1e-3)
        assert cc.cwnd() < before
        assert cc.signal_decreases == 1
        # A second cut within the holdoff does nothing...
        mid = cc.cwnd()
        cc.on_ack(BASE_RTT, ack(buffer_fraction=0.9), now=1e-3 + 1e-6)
        assert cc.cwnd() == mid
        # ...but after the 10 µs holdoff (≪ RTT) it cuts again: sub-RTT.
        cc.on_ack(BASE_RTT, ack(buffer_fraction=0.9), now=1e-3 + 11e-6)
        assert cc.cwnd() < mid

    def test_no_signal_behaves_like_swift(self):
        swift = SwiftCC(SwiftConfig(), initial_cwnd=2.0)
        hostcc = HostSignalCC(SwiftConfig(), initial_cwnd=2.0)
        for i in range(5):
            swift.on_ack(BASE_RTT, ack(), now=i * 1e-4)
            hostcc.on_ack(BASE_RTT, ack(), now=i * 1e-4)
        assert hostcc.cwnd() == pytest.approx(swift.cwnd())

    def test_memory_saturation_suppresses_growth(self):
        cc = HostSignalCC(SwiftConfig(), initial_cwnd=2.0)
        before = cc.cwnd()
        cc.on_ack(BASE_RTT, ack(mem_util=0.99), now=1e-3)
        assert cc.cwnd() <= before


def test_make_cc_factory():
    cfg = SwiftConfig()
    assert isinstance(make_cc("swift", cfg), SwiftCC)
    assert isinstance(make_cc("dctcp", cfg), DctcpCC)
    assert isinstance(make_cc("cubic", cfg), CubicCC)
    assert isinstance(make_cc("hostcc", cfg), HostSignalCC)
    with pytest.raises(ValueError):
        make_cc("reno", cfg)
