"""Unit tests for the tracing facility."""

import pytest

from repro.sim import Simulator, Tracer
from repro.sim.tracing import TraceRecord


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    tracer.emit("nic", "drop", seq=1)
    assert tracer.records == []


def test_enabled_tracer_records_with_time():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    sim.call(5e-6, tracer.emit, "nic", "drop")
    sim.run()
    (record,) = tracer.records
    assert record.time == 5e-6
    assert record.component == "nic"
    assert record.event == "drop"


def test_filter_by_component_and_event():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.emit("nic", "drop")
    tracer.emit("nic", "dma_start")
    tracer.emit("cpu", "drop")
    assert len(tracer.filter(component="nic")) == 2
    assert len(tracer.filter(event="drop")) == 2
    assert len(tracer.filter(component="nic", event="drop")) == 1


def test_max_records_cap():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, max_records=3)
    with pytest.warns(RuntimeWarning, match="tracer ring full"):
        for i in range(10):
            tracer.emit("x", "e", i=i)
    assert len(tracer.records) == 3
    assert tracer.dropped == 7


def test_sink_receives_all_records_despite_cap():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, max_records=1)
    seen = []
    tracer.add_sink(seen.append)
    with pytest.warns(RuntimeWarning, match="tracer ring full"):
        tracer.emit("x", "a")
        tracer.emit("x", "b")
    assert len(seen) == 2
    assert len(tracer.records) == 1


def test_record_str_format():
    record = TraceRecord(1e-6, "nic", "drop", {"seq": 3})
    text = str(record)
    assert "nic.drop" in text
    assert "seq=3" in text


def test_clear():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.emit("x", "a")
    tracer.clear()
    assert tracer.records == []


def test_nic_emits_trace_events_when_enabled():
    """Integration: the NIC datapath feeds the tracer."""
    import random

    from repro.core.config import HostConfig
    from repro.host import ReceiverHost
    from repro.net.packet import Packet

    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    host = ReceiverHost(sim, HostConfig(), random.Random(0),
                        tracer=tracer)
    host.attach_ack_egress(lambda a: None)
    host.attach_receiver(lambda p: None)
    host.deliver_packet(Packet(0, 0, 4096, 4452, 0.0, 0))
    sim.run(until=1e-4)
    assert tracer.filter(component="nic", event="dma_start")
    assert tracer.filter(component="nic", event="dma_done")
