"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    """Point the on-disk result cache at a per-test directory.

    CLI commands cache results by default; tests must never read or
    pollute the developer's real ``~/.cache/repro``.
    """
    cache_dir = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir
