"""Tests for the transport registry (name -> CC factory map)."""

import pytest

from repro.core.config import ExperimentConfig, SwiftConfig
from repro.transport import registry
from repro.transport.registry import available, create, register
from repro.transport.swift import SwiftCC, make_cc


def test_builtins_available_in_canonical_order():
    names = available()
    assert names[:5] == ("swift", "dctcp", "cubic", "hostcc", "timely")


def test_create_builds_each_builtin():
    for name in available():
        cc = create(name, SwiftConfig())
        assert hasattr(cc, "cwnd") and cc.cwnd() > 0


def test_create_unknown_name_lists_available():
    with pytest.raises(ValueError) as err:
        create("reno", SwiftConfig())
    msg = str(err.value)
    assert "reno" in msg and "swift" in msg


def test_make_cc_back_compat_alias():
    cc = make_cc("swift", SwiftConfig(), initial_cwnd=3.0)
    assert isinstance(cc, SwiftCC)
    assert cc.cwnd() == 3.0


def test_config_validation_reads_registry():
    with pytest.raises(ValueError, match="reno"):
        ExperimentConfig(transport="reno")


def test_register_new_protocol_and_reject_collisions():
    @register("test-proto")
    class TestProtoCC:
        def __init__(self, config, initial_cwnd=2.0):
            self._cwnd = initial_cwnd

        def cwnd(self):
            return self._cwnd

    try:
        assert "test-proto" in available()
        cc = create("test-proto", SwiftConfig(), initial_cwnd=5.0)
        assert isinstance(cc, TestProtoCC) and cc.cwnd() == 5.0
        # Registered names become valid transports end to end.
        config = ExperimentConfig(transport="test-proto")
        assert config.transport == "test-proto"
        # Same name, different factory: refused.
        with pytest.raises(ValueError, match="test-proto"):
            register("test-proto")(SwiftCC)
        # Re-registering the identical factory is an idempotent no-op.
        register("test-proto")(TestProtoCC)
    finally:
        registry._FACTORIES.pop("test-proto", None)
