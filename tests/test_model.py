"""Unit tests for the analytical throughput models."""

import dataclasses

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
)
from repro.core.model import (
    ThroughputModel,
    dma_base_latency,
    iotlb_working_set,
    littles_law_throughput_bps,
    miss_penalty,
    modeled_app_throughput_bps,
    predicted_miss_ratio,
)


def config(cores=12, **host_overrides):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores), **host_overrides))


class TestLittlesLaw:
    def test_basic_bound(self):
        # 22260 B in flight, 1.5 µs per DMA -> ~118.7 Gbps.
        bound = littles_law_throughput_bps(22260, 1.5e-6)
        assert bound == pytest.approx(22260 * 8 / 1.5e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            littles_law_throughput_bps(0, 1e-6)
        with pytest.raises(ValueError):
            littles_law_throughput_bps(1000, 0)


class TestLatencyComponents:
    def test_t_base_composition(self):
        host = HostConfig()
        t = dma_base_latency(host, wire_bytes=4452)
        expected = (host.pcie.dma_fixed_latency
                    + 4452 * 8 / host.pcie.goodput_bps
                    + host.memory.idle_latency)
        assert t == pytest.approx(expected)

    def test_t_base_grows_under_contention(self):
        host = HostConfig()
        assert dma_base_latency(host, 4452, memory_utilization=1.0) > \
            dma_base_latency(host, 4452, memory_utilization=0.1)

    def test_miss_penalty_at_idle_is_walk_latency(self):
        host = HostConfig()
        assert miss_penalty(host.memory, 0.1) == pytest.approx(
            host.memory.walk_base_latency)

    def test_miss_penalty_scales_with_walk_accesses(self):
        host = HostConfig()
        assert miss_penalty(host.memory, 0.1, walk_accesses=2.0) == \
            pytest.approx(2 * host.memory.walk_base_latency)


class TestWorkingSet:
    def test_baseline_sixteen_pages_per_thread(self):
        ws = iotlb_working_set(HostConfig())
        assert ws.pages_per_thread == 16

    def test_knee_at_eight_threads(self):
        # 8 threads exactly fill the 128-entry IOTLB.
        at_8 = iotlb_working_set(
            HostConfig(cpu=CpuConfig(cores=8))).total_pages
        assert at_8 == 128
        assert predicted_miss_ratio(
            HostConfig(cpu=CpuConfig(cores=8))) == 0.0
        assert predicted_miss_ratio(
            HostConfig(cpu=CpuConfig(cores=10))) > 0.0

    def test_hugepages_off_inflates_working_set(self):
        on = iotlb_working_set(HostConfig(hugepages=True))
        off = iotlb_working_set(HostConfig(hugepages=False))
        assert off.total_pages > 100 * on.total_pages
        assert off.accesses_per_packet == on.accesses_per_packet + 1

    def test_region_size_grows_working_set(self):
        small = iotlb_working_set(HostConfig(rx_region_bytes=4 * 2**20))
        large = iotlb_working_set(HostConfig(rx_region_bytes=16 * 2**20))
        assert large.total_pages > small.total_pages


class TestThroughputModel:
    def test_cpu_bound_region_linear(self):
        assert ThroughputModel(config(cores=4)).predict() == \
            pytest.approx(4 * 11.5e9)

    def test_line_rate_binds_at_enough_cores(self):
        model = ThroughputModel(config(cores=12))
        assert model.predict() == pytest.approx(92e9, rel=0.001)

    def test_misses_engage_interconnect_bound(self):
        model = ThroughputModel(config(cores=12))
        degraded = model.predict(misses_per_packet=3.0)
        assert degraded < 85e9
        assert degraded == pytest.approx(
            model.interconnect_bound_bps(3.0))

    def test_monotone_in_misses(self):
        model = ThroughputModel(config(cores=16))
        values = [model.predict(m / 2) for m in range(10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_memory_contention_compounds(self):
        model = ThroughputModel(config(cores=16))
        assert model.predict(2.0, memory_utilization=1.0) < \
            model.predict(2.0, memory_utilization=0.1)

    def test_pcie_bound_visible_without_line_rate_cap(self):
        cfg = config(cores=16)
        cfg = dataclasses.replace(
            cfg, link=dataclasses.replace(cfg.link, rate_bps=400e9))
        model = ThroughputModel(cfg)
        # With a 400G link, PCIe gen3 becomes the binding constraint.
        assert model.predict() == pytest.approx(model.pcie_bound_bps())

    def test_convenience_wrapper(self):
        cfg = config(cores=12)
        assert modeled_app_throughput_bps(cfg, 0.0) == \
            ThroughputModel(cfg).predict(0.0)

    def test_matches_paper_operating_point(self):
        # At the paper's 16-core IOMMU-ON point (~1.4 misses/packet in
        # our reproduction) the model lands near the measured ~78 Gbps.
        model = ThroughputModel(config(cores=16))
        bound = model.predict(misses_per_packet=1.4)
        assert 70e9 < bound < 88e9
