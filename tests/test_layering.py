"""The layering lint: clean on the real tree, loud on a violation."""

import ast
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_layering.py"


def run_lint(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, cwd=REPO)


def test_real_tree_is_clean():
    proc = run_lint()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "layering: OK" in proc.stdout
    for package in ("sim", "net", "obs", "host", "transport",
                    "workload", "core", "analysis", "cli", "scenarios"):
        assert package in proc.stdout


def make_fake_tree(tmp_path):
    """A minimal repro tree with every package the lint requires."""
    pkg = tmp_path / "repro"
    for sub in ("sim", "net", "obs", "host", "transport", "workload",
                "core", "analysis", "cli", "scenarios"):
        (pkg / sub).mkdir(parents=True)
        (pkg / sub / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    return pkg


def test_timer_wheel_is_layer_zero_leaf():
    """``repro.sim.wheel`` is the bottom of the dependency graph: the
    lint covers it as part of the sim layer (layer 0, no upward
    imports), and — stricter than the layer rule — it must not import
    any ``repro`` module at all, so the engine hot path it serves never
    grows hidden dependencies."""
    path = REPO / "src" / "repro" / "sim" / "wheel.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    repro_imports = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            repro_imports += [a.name for a in node.names
                              if a.name.split(".")[0] == "repro"]
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "repro":
                repro_imports.append(node.module)
    assert repro_imports == [], (
        f"sim/wheel.py must stay a leaf module, imports {repro_imports}")


def test_fluid_solver_is_pinned_to_the_kernel_layer():
    """``repro.sim.fluid`` is the second engine fidelity and sits in
    the simulation kernel (layer 0): the lint forbids it from
    importing host/transport/workload — whose physics it mirrors in
    closed form — and, stricter, its only module-level ``repro``
    imports must be the pinned layer-0 kernel modules (config /
    calibration / metrics) or ``repro.sim`` neighbours."""
    sys.path.insert(0, str(REPO / "scripts"))
    try:
        from check_layering import KERNEL_MODULES, layer_of
    finally:
        sys.path.pop(0)
    assert layer_of("repro.sim.fluid") == 0
    path = REPO / "src" / "repro" / "sim" / "fluid.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Import):
            targets = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            targets = [node.module]
        for target in targets:
            if target.split(".")[0] != "repro":
                continue
            assert (target in KERNEL_MODULES
                    or any(target.startswith(k + ".")
                           for k in KERNEL_MODULES)
                    or target.startswith("repro.sim")), (
                f"sim/fluid.py may only import kernel modules, "
                f"imports {target}")


def test_batched_fluid_solver_is_pinned_to_the_kernel_layer():
    """``repro.sim.fluid_batch`` is the vectorized form of the fluid
    solver and sits beside it at layer 0: cohort grouping and fleet
    policy belong to ``workload`` (which imports *down* into it), so
    the batch module itself may only see the pinned kernel modules
    and its ``repro.sim`` neighbours — exactly the rule that keeps
    the scalar solver a leaf."""
    sys.path.insert(0, str(REPO / "scripts"))
    try:
        from check_layering import KERNEL_MODULES, layer_of
    finally:
        sys.path.pop(0)
    assert layer_of("repro.sim.fluid_batch") == 0
    path = REPO / "src" / "repro" / "sim" / "fluid_batch.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Import):
            targets = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            targets = [node.module]
        for target in targets:
            if target.split(".")[0] != "repro":
                continue
            assert (target in KERNEL_MODULES
                    or any(target.startswith(k + ".")
                           for k in KERNEL_MODULES)
                    or target.startswith("repro.sim")), (
                f"sim/fluid_batch.py may only import kernel modules, "
                f"imports {target}")


def test_routing_is_pinned_to_the_kernel_layer():
    """``repro.net.routing`` is the shared path-hash: the packet
    fabric selects ports with it and the fluid profile replays the
    same assignments, so it is pinned at layer 0 where both engines
    can see it.  Stricter than the layer rule, it must not import any
    ``repro`` module at all — a leaf, like ``sim.wheel`` — so the two
    fidelities can never diverge through a hidden dependency."""
    sys.path.insert(0, str(REPO / "scripts"))
    try:
        from check_layering import KERNEL_MODULES, layer_of
    finally:
        sys.path.pop(0)
    assert "repro.net.routing" in KERNEL_MODULES
    assert layer_of("repro.net.routing") == 0
    path = REPO / "src" / "repro" / "net" / "routing.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    repro_imports = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            repro_imports += [a.name for a in node.names
                              if a.name.split(".")[0] == "repro"]
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "repro":
                repro_imports.append(node.module)
    assert repro_imports == [], (
        f"net/routing.py must stay a leaf module, "
        f"imports {repro_imports}")


def test_upward_import_is_flagged(tmp_path):
    # A fake repro tree where the bottom layer imports a higher one.
    pkg = make_fake_tree(tmp_path)
    (pkg / "sim" / "engine.py").write_text("import repro.host.nic\n")
    proc = run_lint("--root", str(tmp_path))
    assert proc.returncode == 1
    assert "repro.sim.engine (layer 0) imports repro.host.nic (layer 2)" \
        in proc.stdout


def test_function_scope_import_is_exempt(tmp_path):
    pkg = make_fake_tree(tmp_path)
    (pkg / "sim" / "engine.py").write_text(
        "def lazy():\n    import repro.cli\n")
    proc = run_lint("--root", str(tmp_path))
    assert proc.returncode == 0, proc.stdout


def test_kernel_modules_importable_from_layer_zero(tmp_path):
    pkg = make_fake_tree(tmp_path)
    (pkg / "sim" / "engine.py").write_text(
        "from repro.core.config import ExperimentConfig\n"
        "from repro.core import calibration\n")
    proc = run_lint("--root", str(tmp_path))
    assert proc.returncode == 0, proc.stdout


def test_data_package_may_not_import_anything(tmp_path):
    """Any import in repro.scenarios — even a lazy or layer-legal one —
    is a violation: specs are data, not code."""
    pkg = make_fake_tree(tmp_path)
    (pkg / "scenarios" / "helpers.py").write_text(
        "def lazy():\n    import json\n")
    proc = run_lint("--root", str(tmp_path))
    assert proc.returncode == 1
    assert "data package repro.scenarios" in proc.stdout
    assert "may not import anything" in proc.stdout


def test_missing_required_package_is_flagged(tmp_path):
    pkg = make_fake_tree(tmp_path)
    for child in (pkg / "scenarios").iterdir():
        child.unlink()
    (pkg / "scenarios").rmdir()
    proc = run_lint("--root", str(tmp_path))
    assert proc.returncode == 1
    assert "scenarios" in proc.stdout
