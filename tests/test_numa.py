"""Tests for the dual-NUMA extension (paper §4 rescheduling)."""

import random

import pytest

from repro.core.config import CpuConfig, HostConfig, SimConfig
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_experiment
from repro.host import ReceiverHost
from repro.sim import Simulator


def test_remote_antagonists_load_remote_controller_only():
    sim = Simulator()
    host = ReceiverHost(
        sim, HostConfig(remote_antagonist_cores=10),
        random.Random(0))
    sim.run(until=1e-3)
    assert host.remote_memory.utilization > 0.5
    assert host.memory.utilization < 0.1


def test_local_antagonists_do_not_touch_remote_node():
    sim = Simulator()
    host = ReceiverHost(
        sim, HostConfig(antagonist_cores=10), random.Random(0))
    sim.run(until=1e-3)
    assert host.memory.utilization > 0.5
    assert host.remote_memory.utilization == 0.0


def test_negative_remote_cores_rejected():
    with pytest.raises(ValueError):
        HostConfig(remote_antagonist_cores=-1)


def test_snapshot_reports_remote_bandwidth():
    sim = Simulator()
    host = ReceiverHost(
        sim, HostConfig(remote_antagonist_cores=10), random.Random(0))
    sim.run(until=1e-3)
    assert host.snapshot()["remote_memory_GBps"] > 50


def test_rescheduling_restores_nic_throughput():
    """The §4 claim end-to-end: moving the antagonist to the remote
    node removes the NIC's memory-bus starvation."""

    def run(local, remote):
        config = ExperimentConfig(
            host=HostConfig(
                cpu=CpuConfig(cores=12),
                antagonist_cores=local,
                remote_antagonist_cores=remote,
            ),
            sim=SimConfig(warmup=2e-3, duration=4e-3, seed=1),
        )
        return run_experiment(config).metrics

    starved = run(local=15, remote=0)
    rescheduled = run(local=0, remote=15)
    assert rescheduled["app_throughput_gbps"] > \
        starved["app_throughput_gbps"] + 10
    assert rescheduled["remote_memory_GBps"] > 80
