"""Property tests for the batched fluid solver and cohort grouping.

The batched backend's whole claim is *exactness*: for any config the
scalar fluid solver accepts, a :class:`BatchFluidSolver` lane must
reproduce the scalar trajectory bit for bit (the fleet aggregate's
equality is exact, so "close" is not good enough).  These tests sweep
the config space hypothesis-style — transport, offered load, IOMMU,
hugepages, cores, antagonists — and assert per-host state,
accumulator, and headline-metric equality, plus the cohort-grouping
invariants the fleet driver relies on (exact partition; a key never
splits identical configs)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.sim.fluid import FluidSolver
from repro.sim.fluid_batch import (
    _ACC_ATTRS,
    _STATE_ATTRS,
    BatchFluidSolver,
)
from repro.workload.fleet import FleetSampler, cohort_key, group_cohorts

WARMUP = 0.5e-3
DURATION = 1e-3
END = WARMUP + DURATION


def make_config(transport, offered, iommu, hugepages, cores,
                antagonist, senders, region_mb) -> ExperimentConfig:
    return ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=cores),
            iommu=IommuConfig(enabled=iommu),
            hugepages=hugepages,
            rx_region_bytes=region_mb * 2**20,
            antagonist_cores=antagonist,
        ),
        workload=WorkloadConfig(senders=senders, offered_load=offered),
        transport=transport,
        fidelity="fluid",
        sim=SimConfig(warmup=WARMUP, duration=DURATION, seed=1),
    )


#: The fleet sampler's config space (and a bit beyond it): every
#: structural branch combination times a spread of continuous knobs.
config_space = st.builds(
    make_config,
    transport=st.sampled_from(("swift", "cubic")),
    offered=st.sampled_from((None, 0.25, 0.55, 0.7, 0.95)),
    iommu=st.booleans(),
    hugepages=st.booleans(),
    cores=st.sampled_from((2, 4, 8, 12, 16)),
    antagonist=st.sampled_from((0, 4, 8, 15)),
    senders=st.sampled_from((10, 20, 40)),
    region_mb=st.sampled_from((4, 8, 16)),
)


def solve_scalar(config) -> FluidSolver:
    solver = FluidSolver(config)
    solver.run_until(WARMUP)
    solver.reset_stats()
    solver.run_until(END)
    return solver


def assert_lane_matches_scalar(batch: BatchFluidSolver, lane: int,
                               scalar: FluidSolver) -> None:
    """Lane ``lane`` of ``batch`` must equal the solved ``scalar``:
    exact for every state variable and accumulator in the dynamics
    chain; rtol for ``timeouts`` (the one knowingly inexact output,
    see the fluid_batch module docstring)."""
    assert int(batch.steps[lane]) == scalar.steps
    for attr in _STATE_ATTRS:
        assert float(getattr(batch, attr)[lane]) == getattr(
            scalar, attr), f"state {attr} diverged"
    for attr in _ACC_ATTRS:
        got = float(getattr(batch, attr)[lane])
        want = getattr(scalar.run, attr)
        if attr == "timeouts":
            assert math.isclose(got, want, rel_tol=1e-9,
                                abs_tol=1e-12), "timeouts out of rtol"
        else:
            assert got == want, f"accumulator {attr} diverged"


@settings(max_examples=25, deadline=None)
@given(config=config_space)
def test_single_lane_matches_scalar_bit_for_bit(config):
    batch = BatchFluidSolver([config])
    batch.run_until(WARMUP)
    batch.reset_stats()
    batch.run_until(END)
    assert_lane_matches_scalar(batch, 0, solve_scalar(config))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20),
       start=st.integers(min_value=0, max_value=997))
def test_fleet_cohorts_match_scalar_per_host(seed, start):
    """A window of the real fleet population, batched cohort by
    cohort, must reproduce every host's scalar trajectory — including
    hosts frozen by the active mask while slower-``dt`` cohort-mates
    catch up."""
    sampler = FleetSampler(seed=seed, warmup=WARMUP,
                           duration=DURATION, fidelity="fluid")
    indexed = [(i, sampler.draw_config(i))
               for i in range(start, start + 24)]
    configs = dict(indexed)
    cohorts = group_cohorts(indexed)
    seen = []
    for indices in cohorts.values():
        batch = BatchFluidSolver([configs[i] for i in indices])
        batch.run_until(WARMUP)
        batch.reset_stats()
        batch.run_until(END)
        for lane, index in enumerate(indices):
            assert_lane_matches_scalar(batch, lane,
                                       solve_scalar(configs[index]))
        seen.extend(indices)
    assert sorted(seen) == [i for i, _ in indexed]


@settings(max_examples=25, deadline=None)
@given(config=config_space)
def test_fleet_metrics_match_scalar_pipeline(config):
    """The batch's headline metrics must be bitwise equal to the
    scalar experiment pipeline's (these are the values the fleet
    aggregate sketches, where equality is exact)."""
    from repro.core.experiment import run_experiment

    batch = BatchFluidSolver([config])
    batch.run_until(WARMUP)
    batch.reset_stats()
    batch.run_until(END)
    metrics = batch.fleet_metrics()
    result = run_experiment(config)
    for key in ("link_utilization", "drop_rate",
                "app_throughput_gbps"):
        assert float(metrics[key][0]) == result.metrics[key], key


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20),
       start=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=64))
def test_group_cohorts_partitions_exactly(seed, start, count):
    sampler = FleetSampler(seed=seed, fidelity="fluid")
    indexed = [(i, sampler.draw_config(i))
               for i in range(start, start + count)]
    cohorts = group_cohorts(indexed)
    flattened = [i for indices in cohorts.values() for i in indices]
    # Every index in exactly one cohort, order preserved inside each.
    assert sorted(flattened) == list(range(start, start + count))
    assert len(flattened) == len(set(flattened))
    configs = dict(indexed)
    for key, indices in cohorts.items():
        assert indices == sorted(indices)
        for index in indices:
            assert cohort_key(configs[index]) == key


@given(config=config_space)
@settings(max_examples=25, deadline=None)
def test_cohort_key_never_splits_identical_configs(config):
    assert cohort_key(config) == cohort_key(config)
    cohorts = group_cohorts([(0, config), (1, config), (2, config)])
    assert list(cohorts.values()) == [[0, 1, 2]]


def test_mixed_cohort_is_rejected():
    swift = make_config("swift", None, True, True, 8, 0, 10, 4)
    cubic = make_config("cubic", None, True, True, 8, 0, 10, 4)
    open_loop = make_config("swift", 0.7, True, True, 8, 0, 10, 4)
    no_iommu = make_config("swift", None, False, True, 8, 0, 10, 4)
    for other in (cubic, open_loop, no_iommu):
        with pytest.raises(ValueError, match="mixed cohort"):
            BatchFluidSolver([swift, other])
    assert cohort_key(swift) != cohort_key(cubic)
    assert cohort_key(swift) != cohort_key(open_loop)
    assert cohort_key(swift) != cohort_key(no_iommu)


def test_empty_batch_is_rejected():
    with pytest.raises(ValueError, match="at least one config"):
        BatchFluidSolver([])
