"""Unit tests for reproducible RNG streams."""

import pytest

from repro.sim import RngRegistry
from repro.sim.randoms import derive_seed


def test_same_name_returns_same_stream_object():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_registries():
    draws1 = [RngRegistry(seed=7).stream("x").random() for _ in range(1)]
    draws2 = [RngRegistry(seed=7).stream("x").random() for _ in range(1)]
    assert draws1 == draws2


def test_different_names_give_different_sequences():
    rngs = RngRegistry(seed=7)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_sequences():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_adding_stream_does_not_perturb_existing():
    rngs1 = RngRegistry(seed=3)
    s = rngs1.stream("main")
    first = [s.random() for _ in range(3)]

    rngs2 = RngRegistry(seed=3)
    rngs2.stream("other")           # extra stream created first
    s2 = rngs2.stream("main")
    second = [s2.random() for _ in range(3)]
    assert first == second


def test_derive_seed_stable_values():
    # Pin a couple of values so accidental algorithm changes are caught.
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert 0 <= derive_seed(123, "stream") < 2 ** 64


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(seed=-1)


def test_spawn_children_independent():
    parent = RngRegistry(seed=5)
    child_a = parent.spawn("a")
    child_b = parent.spawn("b")
    assert child_a.stream("x").random() != child_b.stream("x").random()
    # Spawning is deterministic too.
    again = RngRegistry(seed=5).spawn("a")
    assert again.stream("x").random() == RngRegistry(seed=5).spawn("a").stream("x").random()


def test_names_lists_created_streams():
    rngs = RngRegistry(seed=0)
    rngs.stream("b")
    rngs.stream("a")
    assert rngs.names() == ["a", "b"]
