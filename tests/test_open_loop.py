"""Tests for open-loop offered load and sender backlog handling."""

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    SwiftConfig,
    WorkloadConfig,
)
from repro.core.experiment import run_experiment
from repro.net.packet import Ack
from repro.sim import Simulator
from repro.transport.base import Connection
from repro.transport.swift import SwiftCC


class TestBacklogConnection:
    def make(self, initial_cwnd=4.0):
        sim = Simulator()
        sent = []
        conn = Connection(
            sim, flow_id=0, sender_id=0, thread_id=0,
            cc=SwiftCC(SwiftConfig(), initial_cwnd=initial_cwnd),
            send=sent.append, payload_bytes=4096, wire_bytes=4452,
            always_backlogged=False)
        return sim, conn, sent

    def test_no_data_no_sends(self):
        sim, conn, sent = self.make()
        sim.run(until=1e-3)
        assert sent == []

    def test_backlog_drives_sends(self):
        sim, conn, sent = self.make()
        conn.add_backlog(3)
        sim.run(until=1e-4)
        assert len(sent) == 3
        assert conn.backlog_packets == 0

    def test_backlog_beyond_window_waits_for_acks(self):
        sim, conn, sent = self.make()
        conn.add_backlog(10)  # window is 4
        sim.run(until=1e-4)
        assert len(sent) == 4
        # Ack everything outstanding, round by round, until the whole
        # backlog has been transmitted.
        acked = set()
        for _ in range(5):
            for pkt in list(sent):
                if pkt.seq not in acked:
                    acked.add(pkt.seq)
                    sim.call(1e-6, conn.on_ack,
                             Ack(0, pkt.seq, pkt.sent_time, 1e-6))
            sim.run(until=sim.now + 1e-4)
        assert len(sent) == 10
        assert conn.backlog_packets == 0

    def test_invalid_backlog_rejected(self):
        _, conn, _ = self.make()
        with pytest.raises(ValueError):
            conn.add_backlog(0)

    def test_retransmissions_do_not_consume_backlog(self):
        sim, conn, sent = self.make(initial_cwnd=8.0)
        conn.add_backlog(8)
        sim.run(until=1e-4)
        # Ack in a gap pattern to force a fast retransmit of seq 0.
        for pkt in sent[1:5]:
            sim.call(10e-6, conn.on_ack,
                     Ack(0, pkt.seq, pkt.sent_time, 1e-6))
        sim.run(until=1e-3)
        fresh = [p for p in sent if not p.is_retransmission]
        retx = [p for p in sent if p.is_retransmission]
        assert len(fresh) == 8  # exactly the backlog
        assert len(retx) >= 1


class TestOpenLoopWorkload:
    def run_at(self, load, seed=2):
        config = ExperimentConfig(
            host=HostConfig(cpu=CpuConfig(cores=12)),
            workload=WorkloadConfig(offered_load=load),
            sim=SimConfig(warmup=2e-3, duration=4e-3, seed=seed))
        return run_experiment(config)

    def test_throughput_tracks_offered_load(self):
        # offered_load is in payload terms: 0.4 × 100 Gbps = 40 Gbps.
        result = self.run_at(0.4)
        assert result.metrics["app_throughput_gbps"] == pytest.approx(
            40.0, rel=0.1)
        assert result.metrics["drop_rate"] < 0.001

    def test_underload_has_low_latency(self):
        result = self.run_at(0.25)
        # Uncongested reads complete in ~tens of microseconds.
        assert result.message_latency_us["p50"] < 200

    def test_offered_load_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(offered_load=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(offered_load=5.0)
        WorkloadConfig(offered_load=None)
        WorkloadConfig(offered_load=1.5)
