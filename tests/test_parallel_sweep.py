"""Parallel sweep execution: serial equivalence, failure surfacing.

The contract under test (repro.core.parallel): a sweep run with
``workers=N`` produces a ResultTable *bit-identical* to the serial run
(same seeds, same table order), worker exceptions abort the sweep with
the offending config attached, and per-run timeouts degrade to
structured FailedRun placeholders instead of sinking the sweep.
"""

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.parallel import (
    RunOutcome,
    SweepRunError,
    resolve_workers,
    run_many,
    run_stream,
)
from repro.core.results import FailedRun
from repro.core.sweep import (
    baseline_config,
    run_sweep,
    sweep_receiver_cores,
)
from repro.workload.fleet import FleetSampler


def tiny_base():
    return baseline_config(warmup=0.5e-3, duration=1e-3)


def tiny_config(seed=3, cores=2, senders=4):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores)),
        workload=WorkloadConfig(senders=senders),
        sim=SimConfig(warmup=0.5e-3, duration=1e-3, seed=seed),
    )


def crashing_config():
    """A config that passes validation but explodes inside the worker.

    Pickling a dataclass restores ``__dict__`` without re-running
    ``__post_init__``, so the bad transport travels to the worker and
    fails at graph-build time — a stand-in for any mid-run crash.
    """
    config = tiny_config()
    object.__setattr__(config, "transport", "definitely-not-a-cc")
    return config


class TestResolveWorkers:
    def test_serial_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count(self):
        assert resolve_workers(6) == 6

    def test_auto_leaves_one_core(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_workers("auto") == 7
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers("auto") == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSerialEquivalence:
    def test_parallel_table_is_bit_identical(self):
        base = tiny_base()
        serial = sweep_receiver_cores(cores=(2, 4), base=base)
        parallel = sweep_receiver_cores(cores=(2, 4), base=base,
                                        workers=2)
        assert serial == parallel
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics
            assert a.params == b.params
            assert a.message_latency_us == b.message_latency_us

    def test_table_order_matches_config_order(self):
        base = tiny_base()
        table = sweep_receiver_cores(cores=(2, 4), iommu_states=(True,),
                                     base=base, workers=2)
        assert table.column("cores") == [2, 4]

    def test_snapshots_identical_and_in_order(self):
        base = tiny_base()
        snaps_serial: list = []
        snaps_parallel: list = []
        sweep_receiver_cores(cores=(2, 4), iommu_states=(True,),
                             base=base, snapshots_out=snaps_serial)
        sweep_receiver_cores(cores=(2, 4), iommu_states=(True,),
                             base=base, workers=2,
                             snapshots_out=snaps_parallel)
        assert snaps_serial == snaps_parallel
        assert [s["meta"]["params"]["cores"] for s in snaps_parallel] \
            == [2, 4]

    def test_progress_called_once_per_run(self):
        seen = []
        run_sweep([tiny_config(seed=s) for s in (1, 2, 3)], workers=2,
                  progress=lambda i, r: seen.append(i))
        assert sorted(seen) == [0, 1, 2]

    def test_fleet_samples_identical(self):
        serial = FleetSampler(seed=7, warmup=0.5e-3,
                              duration=1e-3).run(4)
        parallel = FleetSampler(seed=7, warmup=0.5e-3,
                                duration=1e-3).run(4, workers=2)
        assert serial == parallel


class TestFailureSurfacing:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_crash_aborts_with_config_attached(self, workers):
        bad = crashing_config()
        with pytest.raises(SweepRunError) as excinfo:
            run_sweep([tiny_config(), bad], workers=workers)
        err = excinfo.value
        assert err.index == 1
        assert err.config.transport == "definitely-not-a-cc"
        assert "unknown congestion control" in str(err)

    def test_worker_traceback_preserved(self):
        with pytest.raises(SweepRunError) as excinfo:
            run_sweep([crashing_config()], workers=2)
        assert "ValueError" in excinfo.value.worker_traceback

    @pytest.mark.parametrize("workers", [None, 2])
    def test_timeout_becomes_failed_run(self, workers):
        table = run_sweep([tiny_config(), tiny_config(seed=9)],
                          workers=workers, timeout=1e-4)
        failures = table.failures()
        assert len(failures) == 2
        for failed in failures:
            assert isinstance(failed, FailedRun)
            assert failed.kind == "timeout"
            assert failed.params["failed"] is True
            assert failed.metrics == {}
        assert len(table.ok()) == 0

    def test_timeout_does_not_sink_fast_runs(self):
        # Generous budget: the tiny runs finish, nothing fails.
        table = run_sweep([tiny_config()], timeout=120.0)
        assert table.failures() == []
        assert table.ok().results == table.results

    def test_failed_run_row_exports_flat(self):
        failed = FailedRun.from_config(tiny_config(), kind="timeout",
                                       error="boom", elapsed_s=0.5)
        row = failed.as_flat_dict()
        assert row["failed"] is True
        assert row["error"] == "boom"
        assert row["failure_kind"] == "timeout"


class TestRunMany:
    def test_outcomes_are_indexed_and_ordered(self):
        configs = [tiny_config(seed=s) for s in (5, 6)]
        outcomes = run_many(configs, workers=2)
        assert [o.index for o in outcomes] == [0, 1]
        assert all(isinstance(o, RunOutcome) for o in outcomes)
        assert [o.result.params["seed"] for o in outcomes] == [5, 6]
        assert all(not o.cached for o in outcomes)

    def test_no_snapshot_unless_requested(self):
        (outcome,) = run_many([tiny_config()])
        assert outcome.snapshot is None
        (outcome,) = run_many([tiny_config()], want_snapshots=True)
        assert "meta" in outcome.snapshot


class TestRunStream:
    def test_matches_run_many_serial_and_pooled(self):
        configs = [tiny_config(seed=s) for s in (3, 4, 5, 6)]
        reference = [(o.index, o.result)
                     for o in run_many(list(configs))]
        serial = [(o.index, o.result)
                  for o in run_stream(iter(configs))]
        pooled = [(o.index, o.result)
                  for o in run_stream(iter(configs), workers=2)]
        assert serial == reference
        assert pooled == reference

    def test_consumes_configs_lazily(self):
        """The config iterable must be drawn incrementally: at most
        the in-flight window ahead of what has been yielded."""
        drawn = []

        def configs():
            for seed in range(3, 11):
                drawn.append(seed)
                yield tiny_config(seed=seed)

        stream = run_stream(configs(), workers=2, window=2)
        first = next(stream)
        assert first.index == 0
        # window=2 is clamped to n_workers=2; one yielded + at most
        # the window drawn ahead.
        assert len(drawn) <= 4
        rest = list(stream)
        assert len(rest) == 7
        assert len(drawn) == 8

    def test_start_index_offsets_outcomes(self):
        configs = [tiny_config(seed=s) for s in (3, 4)]
        outcomes = list(run_stream(iter(configs), start_index=10))
        assert [o.index for o in outcomes] == [10, 11]

    def test_failures_keep_yields_failed_run(self):
        configs = [tiny_config(seed=3), crashing_config(),
                   tiny_config(seed=4)]
        outcomes = list(run_stream(iter(configs), failures="keep"))
        assert len(outcomes) == 3
        assert isinstance(outcomes[1].result, FailedRun)
        assert outcomes[1].result.kind == "error"
        assert not getattr(outcomes[0].result, "failed", False)

    def test_failures_raise_aborts_with_config(self):
        configs = [crashing_config(), tiny_config(seed=3)]
        with pytest.raises(SweepRunError) as excinfo:
            list(run_stream(iter(configs), failures="raise"))
        assert excinfo.value.index == 0

    def test_rejects_bad_failures_mode(self):
        with pytest.raises(ValueError):
            list(run_stream(iter([tiny_config()]), failures="ignore"))

    def test_events_stream_lifecycle(self):
        events = []
        list(run_stream(iter([tiny_config(seed=3)]),
                        events=events.append))
        kinds = [event["ev"] for event in events]
        assert "started" in kinds and "finished" in kinds

    def test_abandoning_the_stream_stops_cleanly(self):
        stream = run_stream(
            (tiny_config(seed=s) for s in range(3, 30)), workers=2)
        first = next(stream)
        assert first.index == 0
        stream.close()  # GeneratorExit must cancel queued work
