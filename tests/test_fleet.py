"""Tests for the Figure-1 fleet sampler."""


from repro.workload.fleet import FleetSample, FleetSampler


def test_draws_are_deterministic_for_seed():
    a = [FleetSampler(seed=5).draw_config(i).describe() for i in range(10)]
    b = [FleetSampler(seed=5).draw_config(i).describe() for i in range(10)]
    assert a == b


def test_draws_vary_across_hosts():
    sampler = FleetSampler(seed=5)
    descriptions = [sampler.draw_config(i).describe() for i in range(20)]
    assert len({tuple(sorted(d.items())) for d in descriptions}) > 5


def test_draws_cover_both_transports_and_iommu_states():
    sampler = FleetSampler(seed=5)
    configs = [sampler.draw_config(i) for i in range(50)]
    transports = {c.transport for c in configs}
    assert "swift" in transports and "cubic" in transports
    assert {c.host.iommu.enabled for c in configs} == {True, False}
    assert max(c.host.antagonist_cores for c in configs) >= 12


def test_run_produces_samples_with_bounded_fields():
    sampler = FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3)
    samples = sampler.run(2)
    assert len(samples) == 2
    for sample in samples:
        assert 0 <= sample.link_utilization <= 1.1
        assert 0 <= sample.drop_rate <= 1.0
        assert sample.transport in ("swift", "cubic")


def test_progress_callback():
    sampler = FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3)
    seen = []
    sampler.run(2, progress=lambda done, total: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]


class TestCongestionClass:
    def sample(self, **kwargs):
        defaults = dict(host_index=0, link_utilization=0.5,
                        drop_rate=0.01, transport="swift", cores=12,
                        antagonist_cores=0, iommu=True, hugepages=True)
        defaults.update(kwargs)
        return FleetSample(**defaults)

    def test_memory_bus_label(self):
        assert self.sample(
            antagonist_cores=12).congestion_class == "memory-bus"

    def test_iommu_label(self):
        assert self.sample(cores=12).congestion_class == "iommu"

    def test_benign_label(self):
        assert self.sample(
            cores=4, iommu=False).congestion_class == "cpu-or-none"
