"""Tests for the Figure-1 fleet sampler and its streaming pipeline."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.workload.fleet import FleetSample, FleetSampler, substream_seed
from repro.workload.fleet_agg import (
    FleetAggregate,
    FleetCheckpoint,
    density_rank_correlation,
    shard_bounds,
)


def test_draws_are_deterministic_for_seed():
    a = [FleetSampler(seed=5).draw_config(i).describe() for i in range(10)]
    b = [FleetSampler(seed=5).draw_config(i).describe() for i in range(10)]
    assert a == b


def test_draws_vary_across_hosts():
    sampler = FleetSampler(seed=5)
    descriptions = [sampler.draw_config(i).describe() for i in range(20)]
    assert len({tuple(sorted(d.items())) for d in descriptions}) > 5


def test_draws_cover_both_transports_and_iommu_states():
    sampler = FleetSampler(seed=5)
    configs = [sampler.draw_config(i) for i in range(50)]
    transports = {c.transport for c in configs}
    assert "swift" in transports and "cubic" in transports
    assert {c.host.iommu.enabled for c in configs} == {True, False}
    assert max(c.host.antagonist_cores for c in configs) >= 12


def test_run_produces_samples_with_bounded_fields():
    sampler = FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3)
    samples = sampler.run(2)
    assert len(samples) == 2
    for sample in samples:
        assert 0 <= sample.link_utilization <= 1.1
        assert 0 <= sample.drop_rate <= 1.0
        assert sample.transport in ("swift", "cubic")


def test_progress_callback():
    sampler = FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3)
    seen = []
    sampler.run(2, progress=lambda done, total: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]


def test_substream_seeds_are_stable_and_distinct():
    # Pinned values: the substream derivation is part of the on-disk
    # checkpoint contract — changing it silently would make every
    # resumed population diverge from its checkpoint.
    assert substream_seed(7, 0) == substream_seed(7, 0)
    seeds = {substream_seed(7, i) for i in range(1000)}
    assert len(seeds) == 1000
    assert substream_seed(7, 3) != substream_seed(8, 3)


def test_draw_config_is_order_independent():
    sampler = FleetSampler(seed=11)
    forward = [sampler.draw_config(i).describe() for i in range(12)]
    backward = [FleetSampler(seed=11).draw_config(i).describe()
                for i in reversed(range(12))]
    assert forward == list(reversed(backward))


def test_shard_bounds_partition_exactly():
    for n_hosts in (0, 1, 7, 100):
        for shards in (1, 2, 3, 4, 9):
            bounds = shard_bounds(n_hosts, shards)
            covered = [i for start, stop in bounds
                       for i in range(start, stop)]
            assert covered == list(range(n_hosts)), (n_hosts, shards)


class TestStreaming:
    def sampler(self):
        # Fluid fidelity: the streaming-scale engine, and fast enough
        # to run dozens of hosts per test.
        return FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3,
                            fidelity="fluid")

    def test_run_equals_stream_fold_order(self):
        sampler = self.sampler()
        assert sampler.run(8) == list(sampler.stream(8))

    def test_stream_carries_stratum_and_index(self):
        sampler = self.sampler()
        samples = list(sampler.stream(6))
        assert [s.host_index for s in samples] == list(range(6))
        assert all(s.stratum in dict(FleetSampler.STRATA)
                   for s in samples)

    def test_aggregate_identical_across_shards_and_workers(self):
        sampler = self.sampler()
        reference = sampler.run_aggregate(24)
        for shards in (2, 4):
            for workers in (1, 4):
                aggregate = sampler.run_aggregate(24, shards=shards,
                                                  workers=workers)
                assert aggregate == reference, (shards, workers)
        assert reference.hosts == 24
        assert reference.strata.total == 24

    def test_aggregate_matches_folded_run(self):
        sampler = self.sampler()
        folded = FleetAggregate()
        for sample in sampler.run(16):
            folded.add(sample)
        assert folded == sampler.run_aggregate(16, shards=2)

    def test_stop_after_shard_then_resume_equals_clean(self, tmp_path):
        sampler = self.sampler()
        clean = sampler.run_aggregate(20, shards=4)
        checkpoint = tmp_path / "fleet.ckpt.json"
        partial = sampler.run_aggregate(20, shards=4,
                                        checkpoint=str(checkpoint),
                                        stop_after_shard=1)
        assert partial.hosts == 10  # shards 0 and 1 of 4
        resumed = sampler.run_aggregate(20, shards=4,
                                        checkpoint=str(checkpoint),
                                        resume=True)
        assert resumed == clean

    def test_resume_refuses_population_mismatch(self, tmp_path):
        checkpoint = tmp_path / "fleet.ckpt.json"
        self.sampler().run_aggregate(8, shards=2,
                                     checkpoint=str(checkpoint),
                                     stop_after_shard=0)
        with pytest.raises(ValueError, match="meta mismatch"):
            FleetSampler(seed=99, fidelity="fluid").run_aggregate(
                8, shards=2, checkpoint=str(checkpoint), resume=True)

    def test_checkpoint_roundtrip_and_merge(self, tmp_path):
        sampler = self.sampler()
        checkpoint = tmp_path / "fleet.ckpt.json"
        sampler.run_aggregate(12, shards=3,
                              checkpoint=str(checkpoint))
        loaded = FleetCheckpoint.load(checkpoint)
        assert all(record["done"]
                   for record in loaded.shards.values())
        assert loaded.merged() == sampler.run_aggregate(12)

    def test_shard_index_runs_only_that_shard(self):
        sampler = self.sampler()
        parts = [sampler.run_aggregate(12, shards=3, shard_index=k)
                 for k in range(3)]
        assert [p.hosts for p in parts] == [4, 4, 4]
        merged = FleetAggregate()
        for part in parts:
            merged.merge(part)
        assert merged == sampler.run_aggregate(12)

    def test_sigkill_then_resume_equals_clean(self, tmp_path):
        """A real mid-run kill: SIGKILL the child once the checkpoint
        shows progress, then resume to the clean answer."""
        sampler = self.sampler()
        clean = sampler.run_aggregate(16, shards=4)
        checkpoint = tmp_path / "fleet.ckpt.json"
        child_src = (
            "from repro.workload.fleet import FleetSampler\n"
            "FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3,\n"
            "             fidelity='fluid').run_aggregate(\n"
            "    16, shards=4, checkpoint=%r, checkpoint_every=1)\n"
            % str(checkpoint))
        env = {**os.environ,
               "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                                 / "src")}
        victim = subprocess.Popen(
            [sys.executable, "-c", child_src], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60
            progressed = False
            while time.monotonic() < deadline and not progressed:
                if victim.poll() is not None:
                    break  # finished before we could kill: still fine
                try:
                    state = json.loads(checkpoint.read_text())
                    progressed = any(
                        record["cursor"] > shard_bounds(16, 4)[int(k)][0]
                        for k, record in state["shards"].items())
                except (FileNotFoundError, json.JSONDecodeError):
                    pass
                time.sleep(0.01)
        finally:
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait()
        resumed = sampler.run_aggregate(16, shards=4,
                                        checkpoint=str(checkpoint),
                                        resume=True)
        assert resumed == clean


class TestBatchedBackend:
    """The cohort-batched fluid backend must be observationally
    identical to the scalar one: same seed, equal aggregates (the
    aggregate's own exact ``__eq__``) across every sharding, worker
    count, and batch size — ISSUE 9's acceptance matrix."""

    def sampler(self):
        return FleetSampler(seed=5, warmup=0.5e-3, duration=1e-3,
                            fidelity="fluid")

    def test_backend_resolution(self):
        fluid = self.sampler()
        assert fluid.resolve_backend("auto") == "batched"
        assert fluid.resolve_backend("scalar") == "scalar"
        assert fluid.resolve_backend("batched") == "batched"
        packet = FleetSampler(fidelity="packet")
        assert packet.resolve_backend("auto") == "scalar"
        with pytest.raises(ValueError, match="fidelity='fluid'"):
            packet.resolve_backend("batched")
        with pytest.raises(ValueError, match="backend must be"):
            fluid.resolve_backend("vectorized")

    def test_fluid_fleet_defaults_to_batched(self):
        # "auto" (the run_aggregate default) must take the batched
        # path for fluid fleets and still equal an explicit scalar run.
        sampler = self.sampler()
        assert (sampler.run_aggregate(40)
                == sampler.run_aggregate(40, backend="scalar"))

    @pytest.mark.parametrize("shards", (1, 2))
    @pytest.mark.parametrize("workers", (1, 4))
    @pytest.mark.parametrize("batch_size", (1, 64, 4096))
    def test_equals_scalar_across_matrix(self, shards, workers,
                                         batch_size):
        sampler = self.sampler()
        scalar = sampler.run_aggregate(50, backend="scalar")
        batched = sampler.run_aggregate(50, shards=shards,
                                        workers=workers,
                                        backend="batched",
                                        batch_size=batch_size)
        assert batched == scalar, (shards, workers, batch_size)
        assert batched.hosts == 50

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            self.sampler().run_aggregate(8, batch_size=0)

    def test_batched_checkpoint_resume_equals_clean(self, tmp_path):
        """stop_after_shard on the batched path, then resume — the
        resumed merged aggregate must equal an uninterrupted batched
        run and therefore the scalar answer too."""
        sampler = self.sampler()
        clean = sampler.run_aggregate(20, shards=4, backend="batched",
                                      batch_size=3)
        checkpoint = tmp_path / "fleet.ckpt.json"
        partial = sampler.run_aggregate(20, shards=4,
                                        backend="batched",
                                        batch_size=3,
                                        checkpoint=str(checkpoint),
                                        stop_after_shard=1)
        assert partial.hosts == 10  # shards 0 and 1 of 4
        resumed = sampler.run_aggregate(20, shards=4,
                                        backend="batched",
                                        batch_size=3,
                                        checkpoint=str(checkpoint),
                                        resume=True)
        assert resumed == clean
        assert resumed == sampler.run_aggregate(20, backend="scalar")

    def test_batched_emits_per_host_events(self):
        events = []
        sampler = self.sampler()
        sampler.run_aggregate(12, events=events.append)
        finished = [e for e in events if e.get("ev") == "finished"]
        assert len(finished) == 12
        assert sorted(e["index"] for e in finished) == list(range(12))
        for event in finished:
            assert "link_utilization" in event["metrics"]


class TestFleetAggregate:
    def sample(self, **kwargs):
        defaults = dict(host_index=0, link_utilization=0.5,
                        drop_rate=0.01, transport="swift", cores=12,
                        antagonist_cores=0, iommu=True,
                        hugepages=True, stratum="lean")
        defaults.update(kwargs)
        return FleetSample(**defaults)

    def test_counters_and_fractions(self):
        aggregate = FleetAggregate()
        aggregate.add(self.sample(link_utilization=0.95,
                                  drop_rate=0.01))
        aggregate.add(self.sample(link_utilization=0.3,
                                  drop_rate=0.0))
        aggregate.add(self.sample(link_utilization=0.4,
                                  drop_rate=0.02))
        assert aggregate.hosts == 3
        assert aggregate.droppers == 2
        assert aggregate.low_util_droppers == 1
        assert aggregate.drop_fraction_high_util == 1.0
        assert aggregate.drop_fraction_low_util == 0.5
        assert aggregate.dropper_fraction == pytest.approx(2 / 3)

    def test_merge_is_associative_and_commutative(self):
        parts = []
        for offset in range(3):
            part = FleetAggregate()
            for i in range(4):
                part.add(self.sample(
                    host_index=offset * 4 + i,
                    link_utilization=0.1 * (offset * 4 + i),
                    drop_rate=0.001 * i))
            parts.append(part)
        left = FleetAggregate()
        for part in parts:
            left.merge(part)
        right = FleetAggregate()
        for part in reversed(parts):
            right.merge(part)
        assert left == right
        assert left.hosts == 12

    def test_merge_rejects_alpha_mismatch(self):
        with pytest.raises(ValueError, match="alpha"):
            FleetAggregate(alpha=0.01).merge(FleetAggregate(alpha=0.1))

    def test_serialization_roundtrip(self):
        aggregate = FleetAggregate()
        for i in range(10):
            aggregate.add(self.sample(host_index=i,
                                      link_utilization=0.1 * i,
                                      drop_rate=0.005 * (i % 3)))
        restored = FleetAggregate.from_dict(
            json.loads(json.dumps(aggregate.to_dict())))
        assert restored == aggregate
        assert restored.stratum_median(
            "lean", "link_utilization") == pytest.approx(
                aggregate.stratum_median("lean", "link_utilization"))

    def test_rank_correlation_sign(self):
        positive = FleetAggregate()
        for i in range(40):
            positive.add(self.sample(host_index=i,
                                     link_utilization=i / 40,
                                     drop_rate=1e-5 * (1 + i)))
        assert positive.rank_correlation() > 0.9
        negative = FleetAggregate()
        for i in range(40):
            negative.add(self.sample(host_index=i,
                                     link_utilization=i / 40,
                                     drop_rate=1e-5 * (41 - i)))
        assert negative.rank_correlation() < -0.9
        assert density_rank_correlation(
            FleetAggregate().density) == 0.0

    def test_failed_hosts_are_counted_not_folded(self):
        class Failed:
            kind = "timeout"

        aggregate = FleetAggregate()
        aggregate.add(self.sample())
        aggregate.add_failed(Failed())
        assert aggregate.hosts == 1
        assert aggregate.failed == 1
        assert aggregate.failure_kinds.get("timeout") == 1


class TestCongestionClass:
    def sample(self, **kwargs):
        defaults = dict(host_index=0, link_utilization=0.5,
                        drop_rate=0.01, transport="swift", cores=12,
                        antagonist_cores=0, iommu=True, hugepages=True)
        defaults.update(kwargs)
        return FleetSample(**defaults)

    def test_memory_bus_label(self):
        assert self.sample(
            antagonist_cores=12).congestion_class == "memory-bus"

    def test_iommu_label(self):
        assert self.sample(cores=12).congestion_class == "iommu"

    def test_benign_label(self):
        assert self.sample(
            cores=4, iommu=False).congestion_class == "cpu-or-none"
