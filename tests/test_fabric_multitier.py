"""Multi-tier fabrics: plan construction, per-hop drop accounting,
snapshot-tree exposure, and bit-identical parallel execution.

The determinism contracts are the load-bearing ones: a fat-tree run
must produce the *same* result table whether it executes serially, in
worker processes, or split across separate invocations, because every
path choice flows through the seeded ``stable_hash`` — never the
interpreter's ``hash()`` or iteration order of an unordered container.
"""

import dataclasses

import pytest

from repro.core.config import ExperimentConfig, FabricConfig
from repro.core.experiment import ExperimentHandle
from repro.core.scenario import run_configs
from repro.core.topology import (
    build_fabric_plan,
    dumbbell_plan,
    fattree_plan,
)
from repro.net.packet import Packet
from repro.net.switch import Switch, SwitchPort
from repro.sim import Simulator


def pkt(seq=0, wire=4452, flow=0):
    return Packet(flow_id=flow, seq=seq, payload_bytes=4096,
                  wire_bytes=wire, sent_time=0.0, thread_id=0)


def multitier_config(topology="fattree", routing="ecmp", *, seed=1,
                     senders=4, cores=2, **fabric_kwargs):
    cfg = ExperimentConfig(
        fabric=FabricConfig(topology=topology, routing=routing,
                            **fabric_kwargs))
    cfg = dataclasses.replace(
        cfg,
        host=dataclasses.replace(
            cfg.host, cpu=dataclasses.replace(cfg.host.cpu,
                                              cores=cores)),
        workload=dataclasses.replace(cfg.workload, senders=senders),
        sim=dataclasses.replace(cfg.sim, warmup=0.5e-3,
                                duration=1e-3, seed=seed))
    return cfg


class TestFattreePlan:
    def test_k4_shape(self):
        plan = fattree_plan(4, n_senders=40, n_hosts=1)
        tiers = [tier for _, tier in plan.switches]
        assert tiers.count("edge") == 8
        assert tiers.count("agg") == 8
        assert tiers.count("core") == 4
        # every edge<->agg pair in-pod plus agg<->core, both directions
        assert len(plan.links) == 64
        assert plan.max_hops == 5

    def test_equal_cost_group_sizes(self):
        """Same-edge 1 path, same-pod k/2, cross-pod (k/2)^2."""
        plan = fattree_plan(4, n_senders=40, n_hosts=1)
        sizes = {src: len(group)
                 for (src, _h), group in plan.paths.items()}
        assert sizes[0] == 1          # host 0 also lives on edge 0
        assert sizes[1] == 2          # edge 1 is in pod 0 with edge 0
        assert all(sizes[e] == 4 for e in range(2, 8))

    def test_round_robin_endpoint_placement(self):
        plan = fattree_plan(4, n_senders=10, n_hosts=3)
        assert plan.sender_edge == (0, 1, 2, 3, 4, 5, 6, 7, 0, 1)
        assert plan.host_edge == (0, 1, 2)

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError, match="even"):
            fattree_plan(3, n_senders=4, n_hosts=1)

    def test_paths_end_at_the_host_port(self):
        plan = fattree_plan(4, n_senders=8, n_hosts=2)
        for (_src, host), group in plan.paths.items():
            for path in group:
                assert path[-1] == ("host", host)


class TestDumbbellPlan:
    def test_shape(self):
        plan = dumbbell_plan(3, n_senders=8, n_hosts=2)
        assert [t for _, t in plan.switches] == ["edge", "edge"]
        assert len(plan.links) == 3
        assert plan.host_ports == ((1, 0), (1, 1))
        assert all(len(group) == 3 for group in plan.paths.values())
        assert plan.max_hops == 2

    def test_needs_a_trunk(self):
        with pytest.raises(ValueError):
            dumbbell_plan(0, n_senders=2, n_hosts=1)


class TestBuildFabricPlan:
    def test_dispatch(self):
        fattree = build_fabric_plan(
            multitier_config("fattree", fattree_k=4), 8, 1)
        assert len(fattree.switches) == 20
        dumbbell = build_fabric_plan(
            multitier_config("dumbbell", trunk_links=2), 8, 1)
        assert len(dumbbell.switches) == 2

    def test_star_has_no_plan(self):
        with pytest.raises(ValueError, match="star"):
            build_fabric_plan(ExperimentConfig(), 8, 1)


class TestPerPortDropAccounting:
    def make_port(self, buffer_bytes=10000):
        sim = Simulator()
        got = []
        port = SwitchPort(sim, rate_bps=100e9,
                          buffer_bytes=buffer_bytes, prop_delay=1e-6,
                          deliver=got.append, name="left->right")
        return sim, port, got

    def test_drops_charged_to_the_port(self):
        sim, port, got = self.make_port()
        for i in range(5):
            port.enqueue(pkt(i))
        sim.run()
        assert port.dropped_packets >= 1
        assert port.dropped_bytes == port.dropped_packets * 4452
        assert port.dropped == port.dropped_packets
        assert port.forwarded == len(got)

    def test_own_snapshot_carries_drop_and_occupancy(self):
        sim, port, _ = self.make_port()
        for i in range(5):
            port.enqueue(pkt(i))
        sim.run()
        snap = port.own_snapshot()
        assert snap["dropped"] == float(port.dropped_packets)
        assert snap["dropped_bytes"] == float(port.dropped_bytes)
        assert snap["forwarded"] == float(port.forwarded)
        assert snap["peak_queue_bytes"] > 0
        assert snap["queue_depth_bytes"] == 0.0

    def test_reset_keeps_whole_run_counts(self):
        sim, port, _ = self.make_port()
        for i in range(5):
            port.enqueue(pkt(i))
        sim.run()
        before = port.dropped_packets
        port.reset_stats()
        assert port.dropped_packets == before

    def test_switch_rolls_up_its_ports(self):
        sim = Simulator()
        sink = []
        switch = Switch("agg1", "agg")
        for i in range(2):
            switch.add_port(f"port{i}", SwitchPort(
                sim, rate_bps=100e9, buffer_bytes=10000,
                prop_delay=1e-6, deliver=sink.append))
        for i in range(5):
            switch.ports[0].enqueue(pkt(i))
        sim.run()
        assert switch.dropped() == switch.ports[0].dropped_packets
        assert switch.tier == "agg"
        assert [name for name, _ in switch.children()] \
            == ["port0", "port1"]


class TestSnapshotTree:
    def test_per_hop_metrics_in_the_snapshot(self):
        """The acceptance surface: a dumbbell run exposes
        ``fabric/<switch>/<port>.dropped`` (and friends) in the
        metrics snapshot, and the fabric root counter equals the
        per-port sum."""
        config = multitier_config(
            "dumbbell", "static", trunk_links=2, uplink_scale=0.05,
            buffer_bytes=60000, senders=8, cores=2)
        handle = ExperimentHandle(config)
        handle.run_measurement()
        snap = handle.metrics_snapshot()
        counters = snap["counters"]
        assert "fabric/left/port0.dropped" in counters
        assert "fabric/left/port1.forwarded" in counters
        assert "fabric/right/port0.forwarded" in counters
        assert "fabric/left/port0.peak_queue_bytes" in snap["gauges"]
        per_port = sum(v for k, v in counters.items()
                       if k.startswith("fabric/") and
                       k.endswith(".dropped"))
        assert counters["fabric.fabric_drops"] == per_port
        assert per_port > 0  # the squeezed trunk actually dropped

    def test_fattree_namespaces_every_tier(self):
        config = multitier_config("fattree", "ecmp", fattree_k=4)
        handle = ExperimentHandle(config)
        handle.run_measurement()
        counters = handle.metrics_snapshot()["counters"]
        for prefix in ("fabric/edge0/", "fabric/agg0/",
                       "fabric/core0/"):
            assert any(k.startswith(prefix) for k in counters), prefix


class TestParallelDeterminism:
    def configs(self, routing):
        return [multitier_config("fattree", routing, seed=seed)
                for seed in (1, 2)]

    @pytest.mark.parametrize("routing", ["ecmp", "flowlet"])
    def test_bit_identical_across_worker_counts(self, routing):
        serial = run_configs(self.configs(routing), workers=1)
        parallel = run_configs(self.configs(routing), workers=4)
        assert [r.metrics for r in serial] \
            == [r.metrics for r in parallel]
        assert [r.params for r in serial] \
            == [r.params for r in parallel]

    def test_bit_identical_across_shards(self):
        """Splitting a sweep into separate invocations (shards) must
        not change any row: path hashing is seeded per run, never
        shared across a process's lifetime."""
        configs = self.configs("ecmp")
        whole = run_configs(configs, workers=1)
        sharded = [row
                   for shard in (configs[:1], configs[1:])
                   for row in run_configs(shard, workers=1)]
        assert [r.metrics for r in whole] \
            == [r.metrics for r in sharded]

    def test_repeat_run_is_identical_in_process(self):
        config = multitier_config("fattree", "flowlet")
        first = ExperimentHandle(config)
        first.run_measurement()
        second = ExperimentHandle(config)
        second.run_measurement()
        assert first.collect().metrics == second.collect().metrics
