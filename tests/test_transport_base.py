"""Unit tests for the sender connection state machine."""


from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.sim import Simulator
from repro.transport.base import Connection
from repro.transport.swift import SwiftCC


def make_conn(initial_cwnd=2.0, rto=1e-3, config=None):
    sim = Simulator()
    sent = []
    cc = SwiftCC(config or SwiftConfig(), initial_cwnd=initial_cwnd)
    conn = Connection(
        sim, flow_id=0, sender_id=0, thread_id=0, cc=cc,
        send=sent.append, payload_bytes=4096, wire_bytes=4452, rto=rto)
    return sim, conn, sent, cc


def ack_for(pkt, host_delay=5e-6):
    return Ack(flow_id=pkt.flow_id, seq=pkt.seq,
               sent_time_echo=pkt.sent_time, host_delay=host_delay)


def test_initial_window_sends_immediately():
    sim, conn, sent, _ = make_conn(initial_cwnd=2.0)
    sim.run(until=1e-6)
    assert len(sent) == 2
    assert [p.seq for p in sent] == [0, 1]
    assert conn.inflight_count == 2


def test_ack_releases_window_for_next_packet():
    sim, conn, sent, _ = make_conn(initial_cwnd=1.0)
    sim.run(until=1e-6)
    assert len(sent) == 1
    sim.call(20e-6, conn.on_ack, ack_for(sent[0]))
    sim.run(until=30e-6)
    assert len(sent) >= 2
    assert conn.acks_received == 1


def test_sub_packet_window_paces():
    # cwnd 0.5: one packet per 2*srtt.
    sim, conn, sent, cc = make_conn(initial_cwnd=0.5)
    sim.run(until=1e-6)
    assert len(sent) == 1
    sim.call(5e-6, conn.on_ack, ack_for(sent[0]))
    sim.run(until=10e-6)
    assert len(sent) == 1  # pacing gap not yet elapsed
    sim.run(until=200e-6)
    assert len(sent) >= 2


def test_reorder_loss_detection_triggers_retransmit():
    sim, conn, sent, cc = make_conn(initial_cwnd=8.0)
    sim.run(until=1e-6)
    assert len(sent) == 8
    lost = sent[0]
    # Ack packets 1..4 (tx order after the lost one).
    for pkt in sent[1:5]:
        sim.call(20e-6, conn.on_ack, ack_for(pkt))
    sim.run(until=100e-6)
    retx = [p for p in sent if p.is_retransmission]
    assert len(retx) == 1
    assert retx[0].seq == lost.seq
    assert conn.losses_detected == 1


def test_loss_notifies_cc():
    sim, conn, sent, cc = make_conn(initial_cwnd=8.0)
    sim.run(until=1e-6)
    before = cc.cwnd()
    for pkt in sent[1:5]:
        sim.call(20e-6, conn.on_ack, ack_for(pkt))
    sim.run(until=100e-6)
    assert cc.cwnd() < before + 1  # a cut happened despite AI on acks


def test_rto_retransmits_oldest():
    sim, conn, sent, cc = make_conn(initial_cwnd=1.0, rto=200e-6)
    sim.run(until=1e-6)
    assert len(sent) == 1
    # Never ack: RTO fires and the packet is retransmitted.
    sim.run(until=1e-3)
    retx = [p for p in sent if p.is_retransmission]
    assert len(retx) >= 1
    assert retx[0].seq == sent[0].seq
    assert conn.timeouts >= 1
    assert cc.cwnd() == SwiftConfig().min_cwnd


def test_duplicate_ack_ignored():
    sim, conn, sent, _ = make_conn(initial_cwnd=2.0)
    sim.run(until=1e-6)
    first = ack_for(sent[0])
    sim.call(20e-6, conn.on_ack, first)
    sim.call(21e-6, conn.on_ack, ack_for(sent[0]))
    sim.run(until=50e-6)
    assert conn.acks_received == 1


def test_srtt_tracks_rtt_samples():
    sim, conn, sent, _ = make_conn(initial_cwnd=1.0)
    sim.run(until=1e-6)
    sim.call(100e-6, conn.on_ack, ack_for(sent[0]))
    sim.run(until=200e-6)
    assert conn.srtt > 25e-6  # pulled toward the 100 µs sample


def test_sequences_strictly_increasing_for_fresh_sends():
    sim, conn, sent, _ = make_conn(initial_cwnd=4.0)
    sim.run(until=1e-6)
    for pkt in list(sent):
        sim.call(20e-6, conn.on_ack, ack_for(pkt))
    sim.run(until=100e-6)
    fresh = [p.seq for p in sent if not p.is_retransmission]
    assert fresh == sorted(fresh)
    assert len(set(fresh)) == len(fresh)


def test_stats_counters():
    sim, conn, sent, _ = make_conn(initial_cwnd=2.0)
    sim.run(until=1e-6)
    assert conn.packets_sent == 2
    assert conn.retransmissions == 0


def test_rto_disarms_when_nothing_inflight():
    # An idle flow must leave the event heap empty: once every packet
    # is acked (and no backlog remains) the RTO timer stops
    # rescheduling itself, so sim.run() terminates.
    sim, conn, sent, _ = make_conn(initial_cwnd=2.0, rto=200e-6)
    conn.always_backlogged = False
    conn.add_backlog(2)
    sim.run(until=1e-6)
    assert len(sent) == 2
    assert conn._rto_armed
    for pkt in list(sent):
        sim.call(20e-6, conn.on_ack, ack_for(pkt))
    sim.run()  # drains: no immortal timer keeps the heap alive
    assert conn.inflight_count == 0
    assert not conn._rto_armed
    assert sim.peek() is None


def test_rto_rearms_after_idle_period():
    sim, conn, sent, _ = make_conn(initial_cwnd=1.0, rto=200e-6)
    conn.always_backlogged = False
    conn.add_backlog(1)
    sim.run(until=1e-6)
    sim.call(20e-6, conn.on_ack, ack_for(sent[0]))
    sim.run()
    assert not conn._rto_armed
    # New data after the idle gap: the timer re-arms and still
    # backstops a lost packet.
    conn.add_backlog(1)
    sim.run(until=sim.now + 1e-6)
    assert conn._rto_armed
    fresh = [p for p in sent if not p.is_retransmission][-1]
    sim.run(until=sim.now + 2e-3)  # never acked -> RTO fires
    assert conn.timeouts >= 1
    retx = [p for p in sent if p.is_retransmission]
    assert retx and all(p.seq == fresh.seq for p in retx)
