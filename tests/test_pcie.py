"""Unit tests for the PCIe link model."""

import pytest

from repro.core.config import PcieConfig
from repro.host.pcie import PcieLink
from repro.sim import Simulator


def make_link(**overrides):
    sim = Simulator()
    return sim, PcieLink(sim, PcieConfig(**overrides))


def test_transfer_time_at_goodput():
    _, link = make_link(goodput_bps=110e9)
    assert link.transfer_time(4452) == pytest.approx(4452 * 8 / 110e9)


def test_occupy_idle_link_is_pure_serialization():
    _, link = make_link()
    delay = link.occupy(4096)
    assert delay == pytest.approx(link.transfer_time(4096))


def test_occupy_busy_link_queues():
    _, link = make_link()
    first = link.occupy(4096)
    second = link.occupy(4096)
    assert second == pytest.approx(first + link.transfer_time(4096))


def test_occupancy_drains_over_time():
    sim, link = make_link()
    link.occupy(4096)
    sim.run(until=1e-3)  # long after the transfer finished
    delay = link.occupy(4096)
    assert delay == pytest.approx(link.transfer_time(4096))


def test_zero_bytes_rejected():
    _, link = make_link()
    with pytest.raises(ValueError):
        link.occupy(0)


def test_utilization_accounting():
    sim, link = make_link(goodput_bps=100e9)
    # 10 transfers of 12500 bytes = 1e-5 s of busy time.
    for _ in range(10):
        link.occupy(12500)
    sim.run(until=1e-4)
    assert link.utilization(1e-4) == pytest.approx(0.1)


def test_sustained_throughput_capped_at_goodput():
    sim, link = make_link(goodput_bps=110e9)
    n, size = 1000, 4452
    for _ in range(n):
        link.occupy(size)
    # The last transfer ends at n*tx: rate == goodput.
    total_time = link._busy_until
    assert n * size * 8 / total_time == pytest.approx(110e9)


def test_reset_accounting():
    sim, link = make_link()
    link.occupy(4096)
    link.reset_accounting()
    assert link.bytes_transferred == 0
    assert link.utilization(1e-3) == 0.0


def test_config_validation():
    with pytest.raises(ValueError):
        PcieConfig(goodput_bps=200e9, raw_bps=128e9)
    with pytest.raises(ValueError):
        PcieConfig(max_inflight_bytes=100)
    with pytest.raises(ValueError):
        PcieConfig(dma_fixed_latency=-1e-6)
