"""Perfetto export, span pairing, and flight-recorder ring tests."""

import json

import pytest

from repro.obs.perfetto import to_perfetto, to_trace_events, write_trace
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer


def make_tracer(max_records=1_000_000):
    sim = Simulator()
    return sim, Tracer(sim, enabled=True, max_records=max_records)


class TestSpans:
    def test_begin_end_pair_produces_duration(self):
        sim, tracer = make_tracer()
        span = tracer.begin("nic", "dma", packet=1)
        assert span > 0
        sim.at(5e-6, lambda: None)
        sim.run()
        duration = tracer.end(span, ok=True)
        assert duration == pytest.approx(5e-6)
        assert tracer.open_spans == 0
        phases = [r.phase for r in tracer.records]
        assert phases == ["B", "E"]

    def test_disabled_begin_returns_zero_and_end_is_noop(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        span = tracer.begin("nic", "dma")
        assert span == 0
        assert tracer.end(span) == 0.0
        assert tracer.records == []

    def test_unknown_span_id_is_noop(self):
        _, tracer = make_tracer()
        assert tracer.end(12345) == 0.0
        assert tracer.records == []

    def test_concurrent_spans_are_independent(self):
        sim, tracer = make_tracer()
        a = tracer.begin("nic", "dma")
        b = tracer.begin("cpu0", "process")
        assert a != b
        assert tracer.open_spans == 2
        tracer.end(b)
        assert tracer.open_spans == 1
        tracer.end(a)
        assert tracer.open_spans == 0


class TestRingBuffer:
    def test_eviction_keeps_newest_oldest_first_order(self):
        _, tracer = make_tracer(max_records=3)
        with pytest.warns(RuntimeWarning, match="tracer ring full"):
            for i in range(10):
                tracer.emit("c", "e", i=i)
        assert len(tracer) == 3
        assert [r.fields["i"] for r in tracer.records] == [7, 8, 9]
        assert tracer.dropped == 7

    def test_drop_warning_fires_once(self):
        import warnings as _warnings

        _, tracer = make_tracer(max_records=1)
        with pytest.warns(RuntimeWarning):
            tracer.emit("c", "a")
            tracer.emit("c", "b")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            tracer.emit("c", "c")  # second eviction: no new warning
        assert tracer.dropped == 2

    def test_clear_resets_drop_state(self):
        _, tracer = make_tracer(max_records=1)
        with pytest.warns(RuntimeWarning):
            tracer.emit("c", "a")
            tracer.emit("c", "b")
        tracer.clear()
        assert tracer.dropped == 0
        assert tracer.records == []


class TestPerfettoExport:
    def test_document_round_trips_through_json(self):
        sim, tracer = make_tracer()
        tracer.emit("nic", "rx", seq=1)
        span = tracer.begin("nic", "dma")
        sim.at(2e-6, lambda: None)
        sim.run()
        tracer.end(span)
        doc = json.loads(json.dumps(to_perfetto(tracer)))
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ns"

    def test_b_e_pair_collapses_to_complete_event(self):
        sim, tracer = make_tracer()
        span = tracer.begin("nic", "dma", packet=7)
        sim.at(3e-6, lambda: None)
        sim.run()
        tracer.end(span, bytes=4096)
        events = to_trace_events(tracer.records)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 1
        (x,) = xs
        assert x["name"] == "dma"
        assert x["ts"] == pytest.approx(0.0)
        assert x["dur"] == pytest.approx(3.0)  # µs
        # args merged from begin and end; internal dur key stripped
        assert x["args"]["packet"] == 7
        assert x["args"]["bytes"] == 4096
        assert "dur" not in x["args"]

    def test_instants_and_metadata(self):
        _, tracer = make_tracer()
        tracer.emit("nic", "drop", seq=3)
        events = to_trace_events(tracer.records)
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["args"]["seq"] == 3

    def test_components_get_distinct_named_threads(self):
        _, tracer = make_tracer()
        tracer.emit("nic", "a")
        tracer.emit("cpu0", "b")
        events = to_trace_events(tracer.records)
        thread_names = {e["args"]["name"]: e["tid"] for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert set(thread_names) == {"nic", "cpu0"}
        assert thread_names["nic"] != thread_names["cpu0"]

    def test_open_span_exported_as_unfinished_begin(self):
        _, tracer = make_tracer()
        tracer.begin("nic", "dma")
        events = to_trace_events(tracer.records)
        assert [e["ph"] for e in events if e["ph"] in "BXE"] == ["B"]

    def test_x_records_pass_through(self):
        _, tracer = make_tracer()
        tracer.complete("iommu", "translate", start=1e-6, duration=2e-6)
        events = to_trace_events(tracer.records)
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["ts"] == pytest.approx(1.0)
        assert x["dur"] == pytest.approx(2.0)

    def test_non_primitive_args_stringified(self):
        _, tracer = make_tracer()
        tracer.emit("nic", "rx", obj=object())
        doc = to_perfetto(tracer)
        json.dumps(doc)  # must not raise
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert isinstance(inst["args"]["obj"], str)

    def test_write_trace_produces_loadable_file(self, tmp_path):
        sim, tracer = make_tracer()
        span = tracer.begin("nic", "dma")
        sim.at(1e-6, lambda: None)
        sim.run()
        tracer.end(span)
        out = write_trace(tmp_path / "trace.json", tracer)
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" and e["name"] == "dma"
                   for e in doc["traceEvents"])
