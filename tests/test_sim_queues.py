"""Unit tests for ByteQueue."""

import pytest

from repro.sim import ByteQueue, Simulator


def make_queue(capacity=1000):
    sim = Simulator()
    return sim, ByteQueue(sim, capacity_bytes=capacity, name="test")


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        ByteQueue(sim, capacity_bytes=0)


def test_offer_and_pop_fifo():
    _, q = make_queue()
    assert q.offer("a", 100)
    assert q.offer("b", 200)
    item, size, _ = q.pop()
    assert (item, size) == ("a", 100)
    item, size, _ = q.pop()
    assert (item, size) == ("b", 200)
    assert q.pop() is None


def test_tail_drop_when_full():
    _, q = make_queue(capacity=250)
    assert q.offer("a", 100)
    assert q.offer("b", 100)
    assert not q.offer("c", 100)  # would exceed 250
    assert q.dropped_count == 1
    assert q.dropped_bytes == 100
    assert q.bytes_used == 200
    # A smaller item still fits after the drop (tail drop, not head).
    assert q.offer("d", 50)


def test_negative_size_rejected():
    _, q = make_queue()
    with pytest.raises(ValueError):
        q.offer("x", -1)


def test_byte_accounting():
    _, q = make_queue(capacity=500)
    q.offer("a", 200)
    q.offer("b", 300)
    assert q.bytes_used == 500
    assert q.bytes_free == 0
    q.pop()
    assert q.bytes_used == 300
    assert q.bytes_free == 200


def test_peak_bytes_tracked():
    _, q = make_queue(capacity=1000)
    q.offer("a", 600)
    q.offer("b", 300)
    q.pop()
    q.pop()
    assert q.peak_bytes == 900
    assert q.bytes_used == 0


def test_drop_rate():
    _, q = make_queue(capacity=100)
    q.offer("a", 100)
    q.offer("b", 100)  # dropped
    q.offer("c", 100)  # dropped
    assert q.drop_rate() == pytest.approx(2 / 3)


def test_drop_rate_zero_when_untouched():
    _, q = make_queue()
    assert q.drop_rate() == 0.0


def test_enqueue_time_recorded_for_sojourn():
    sim, q = make_queue()
    sim.call(1e-6, q.offer, "a", 10)
    sim.run(until=5e-6)
    assert q.head_sojourn() == pytest.approx(4e-6)
    item, _, t_in = q.pop()
    assert item == "a"
    assert t_in == pytest.approx(1e-6)


def test_head_sojourn_zero_when_empty():
    _, q = make_queue()
    assert q.head_sojourn() == 0.0


def test_mean_occupancy_integral():
    sim, q = make_queue()
    q.offer("a", 100)          # 100 B from t=0
    sim.call(1.0, q.offer, "b", 100)   # 200 B from t=1
    sim.call(2.0, lambda: q.pop())     # 100 B from t=2
    sim.call(2.0, lambda: q.pop())     # 0 B   from t=2
    sim.run(until=4.0)
    # integral = 100*1 + 200*1 + 0*2 = 300 over 4s -> 75
    assert q.mean_occupancy_bytes(elapsed=4.0) == pytest.approx(75.0)


def test_clear_discards_without_counting_drops():
    _, q = make_queue()
    q.offer("a", 10)
    q.offer("b", 10)
    assert q.clear() == 2
    assert q.bytes_used == 0
    assert q.dropped_count == 0
    assert len(q) == 0


def test_counters_after_mixed_operations():
    _, q = make_queue(capacity=100)
    q.offer("a", 60)
    q.offer("b", 60)  # drop
    q.pop()
    q.offer("c", 60)
    assert q.enqueued_count == 2
    assert q.enqueued_bytes == 120
    assert q.dequeued_count == 1
    assert q.dropped_count == 1
