"""Unit tests for metrics helpers and result serialization."""

import pytest

from repro.core.metrics import TimeSeriesRecorder, percentile, summarize
from repro.core.results import ExperimentResult, ResultTable
from repro.sim import Simulator


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_single_value(self):
        assert percentile([3.0], 99) == 3.0

    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = list(range(100))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 99

    def test_unsorted_input(self):
        assert percentile([5, 1, 9, 3, 7], 50) == 5


class TestSummarize:
    def test_empty_summary_is_zero(self):
        s = summarize([])
        assert s.count == 0 and s.mean == 0.0

    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_as_dict_keys(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "p50", "p90", "p99", "max"}


class TestTimeSeriesRecorder:
    def test_samples_at_interval(self):
        sim = Simulator()
        recorder = TimeSeriesRecorder(sim, 1e-3,
                                      probe=lambda: {"v": sim.now})
        recorder.start()
        sim.run(until=5.5e-3)
        assert len(recorder) == 5
        assert recorder.series("v") == pytest.approx(
            [1e-3, 2e-3, 3e-3, 4e-3, 5e-3])

    def test_stop_halts_sampling(self):
        sim = Simulator()
        recorder = TimeSeriesRecorder(sim, 1e-3, probe=lambda: {"v": 1})
        recorder.start()
        sim.call(2.5e-3, recorder.stop)
        sim.run(until=10e-3)
        assert len(recorder) == 2

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(Simulator(), 0, probe=lambda: {})

    def test_no_drift_over_long_run(self):
        # Ticks are scheduled at absolute epoch + k*interval times; with
        # an interval that is inexact in binary (1e-4) and tens of
        # thousands of ticks, chained relative delays would accumulate
        # float error.  Every tick must land exactly on the grid.
        sim = Simulator()
        interval = 1e-4
        recorder = TimeSeriesRecorder(sim, interval, probe=lambda: {"v": 0})
        recorder.start()
        sim.run(until=2.0)
        assert len(recorder) == 20_000
        for k, t in enumerate(recorder.times, start=1):
            assert t == k * interval, f"tick {k} drifted: {t!r}"

    def test_starts_from_current_time_epoch(self):
        sim = Simulator()
        recorder = TimeSeriesRecorder(sim, 1e-3,
                                      probe=lambda: {"v": sim.now})
        sim.call(0.25e-3, recorder.start)
        sim.run(until=3.5e-3)
        assert recorder.times == pytest.approx(
            [1.25e-3, 2.25e-3, 3.25e-3])

    def test_stop_disarms_pending_tick_and_heap_drains(self):
        sim = Simulator()
        recorder = TimeSeriesRecorder(sim, 1e-3, probe=lambda: {"v": 1})
        recorder.start()
        sim.call(2.5e-3, recorder.stop)
        # No `until`: the run must terminate on its own, i.e. the
        # stopped recorder's pending tick must not reschedule forever.
        sim.run()
        assert len(recorder) == 2
        assert sim.peek() is None

    def test_restart_after_stop_rebases_epoch(self):
        sim = Simulator()
        recorder = TimeSeriesRecorder(sim, 1e-3, probe=lambda: {"v": 1})
        recorder.start()
        sim.run(until=2.5e-3)
        recorder.stop()
        sim.run(until=7.2e-3)
        recorder.start()
        sim.run(until=9.5e-3)
        # Two ticks before the stop, then 8.2ms and 9.2ms after restart.
        assert recorder.times == pytest.approx(
            [1e-3, 2e-3, 8.2e-3, 9.2e-3])


def result(**params):
    defaults = {"cores": 12, "iommu": True}
    defaults.update(params)
    return ExperimentResult(
        params=defaults,
        metrics={"app_throughput_gbps": 90.0, "drop_rate": 0.01},
        message_latency_us={"p99": 500.0},
    )


class TestExperimentResult:
    def test_value_lookup_priority(self):
        r = result()
        assert r.value("app_throughput_gbps") == 90.0
        assert r.value("cores") == 12
        assert r.value("p99") == 500.0
        with pytest.raises(KeyError):
            r.value("nonexistent")

    def test_flat_dict_merges_all(self):
        flat = result().as_flat_dict()
        assert flat["cores"] == 12
        assert flat["msg_latency_p99_us"] == 500.0


class TestResultTable:
    def test_where_filters_on_params(self):
        table = ResultTable([result(cores=8), result(cores=12),
                             result(cores=12, iommu=False)])
        assert len(table.where(cores=12)) == 2
        assert len(table.where(cores=12, iommu=True)) == 1

    def test_column_extraction(self):
        table = ResultTable([result(cores=8), result(cores=12)])
        assert table.column("cores") == [8, 12]

    def test_csv_roundtrip_header(self, tmp_path):
        table = ResultTable([result()])
        path = tmp_path / "out.csv"
        table.to_csv(path)
        lines = path.read_text().splitlines()
        assert "cores" in lines[0]
        assert len(lines) == 2

    def test_csv_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            ResultTable().to_csv(tmp_path / "empty.csv")

    def test_json_roundtrip(self, tmp_path):
        table = ResultTable([result(cores=8), result(cores=12)])
        path = tmp_path / "out.json"
        table.to_json(path)
        loaded = ResultTable.from_json(path)
        assert len(loaded) == 2
        assert loaded.column("cores") == [8, 12]
        assert loaded.results[0].metrics["drop_rate"] == 0.01

    def test_append_and_iter(self):
        table = ResultTable()
        table.append(result())
        assert len(list(table)) == 1
