"""End-to-end: one run emits metrics JSON, a Perfetto trace, and a
profiler report — the ISSUE's acceptance criterion for the obs stack."""

import dataclasses
import json

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import ExperimentHandle
from repro.obs.perfetto import to_perfetto
from repro.obs.profiler import SimProfiler


def small_config(**sim_overrides):
    sim = SimConfig(warmup=0.5e-3, duration=1.5e-3, seed=3, **sim_overrides)
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=2)),
        workload=WorkloadConfig(senders=4),
        sim=sim,
    )


@pytest.fixture(scope="module")
def traced_handle():
    handle = ExperimentHandle(small_config(trace=True))
    handle.run_warmup()
    handle.run_measurement()
    return handle


def test_metrics_snapshot_has_paper_observables(traced_handle):
    snap = traced_handle.metrics_snapshot()
    payload = json.loads(json.dumps(snap))  # must be JSON-serializable
    counters = payload["counters"]
    gauges = payload["gauges"]
    # The paper's headline hardware counters, by their metric names.
    for name in ("nic.rx_packets", "nic.dropped_packets",
                 "iommu.iotlb_misses", "transport.retransmissions"):
        assert name in counters, name
    for name in ("nic.drop_rate", "host.iotlb_misses_per_packet",
                 "memory.bandwidth_GBps", "transport.mean_cwnd"):
        assert name in gauges, name
    delay = payload["histograms"]["nic.host_delay_us"]
    assert delay["count"] > 0
    assert 0 < delay["p50"] <= delay["p99"]
    assert payload["meta"]["sim_time_s"] == pytest.approx(
        traced_handle.config.sim.end_time)


def test_metrics_agree_with_component_state(traced_handle):
    snap = traced_handle.metrics_snapshot()
    nic = traced_handle.host.nic
    assert snap["counters"]["nic.rx_packets"] == nic.rx_packets
    assert snap["counters"]["nic.dropped_packets"] == nic.dropped_packets
    assert snap["gauges"]["nic.drop_rate"] == pytest.approx(nic.drop_rate())


def test_trace_contains_nic_dma_spans(traced_handle):
    doc = to_perfetto(traced_handle.tracer)
    json.dumps(doc)  # Perfetto-loadable
    dma = [e for e in doc["traceEvents"]
           if e.get("name") == "dma" and e["ph"] == "X"]
    assert dma, "expected complete NIC DMA spans in the trace"
    assert all(e["dur"] > 0 for e in dma)
    # The DMA waterfall sub-stages ride along as X events too.
    stages = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"descriptor_fetch", "translate", "pcie_transfer",
            "memory_write"} <= stages


def test_profiled_run_reports_per_component_rates():
    handle = ExperimentHandle(small_config())
    handle.run_warmup()
    with SimProfiler(handle.sim) as profiler:
        handle.run_measurement()
    report = profiler.report()
    assert report["events"] > 0
    assert report["events_per_sec"] > 0
    assert "ReceiverThread" in report["components"]
    assert all(stats["events_per_sec"] > 0
               for stats in report["components"].values())


def test_reset_window_separates_warmup_from_measurement():
    handle = ExperimentHandle(small_config())
    handle.run_warmup()
    snap = handle.metrics_snapshot()
    # Right after the warmup reset, windowed counters restart from the
    # component counters, which reset_stats() just zeroed.
    assert snap["counters"]["nic.rx_packets"] == 0
    assert snap["histograms"]["nic.host_delay_us"]["count"] == 0
    handle.run_measurement()
    after = handle.metrics_snapshot()
    assert after["counters"]["nic.rx_packets"] > 0


def test_disabled_tracer_records_nothing():
    handle = ExperimentHandle(small_config(trace=False))
    handle.run_warmup()
    handle.run_measurement()
    assert len(handle.tracer) == 0
    assert handle.tracer.dropped == 0


def test_trace_max_records_config_bounds_ring():
    config = small_config(trace=True)
    config = dataclasses.replace(
        config, sim=dataclasses.replace(config.sim, trace_max_records=100))
    handle = ExperimentHandle(config)
    with pytest.warns(RuntimeWarning, match="tracer ring full"):
        handle.run_warmup()
        handle.run_measurement()
    assert len(handle.tracer) == 100
    assert handle.tracer.dropped > 0
