"""Property tests for the mergeable quantile sketch.

The sketch is the fleet-scale aggregation primitive, so the tests pin
the two things that make it one: the *accuracy contract* (quantiles
within relative error ``alpha`` of a neighbouring order statistic,
checked against a sorted-list oracle) and the *merge algebra*
(associative, commutative, order-independent — exact equality of the
full bucket state, not approximate).
"""

import math
import random

import pytest

from repro.obs.sketch import CategoryTally, Density2D, QuantileSketch

ALPHA = 0.01


def oracle_bounds(values, p):
    """The order statistics bracketing the target rank for ``p``."""
    ordered = sorted(values)
    target = p / 100 * (len(ordered) - 1)
    return ordered[math.floor(target)], ordered[math.ceil(target)]


def assert_quantile_within_bound(sketch, values, p, alpha=ALPHA):
    """`quantile(p)` must be within relative error ``alpha`` of an
    order statistic at most one rank from the target — the documented
    accuracy contract of the DDSketch bucket layout."""
    estimate = sketch.quantile(p)
    low, high = oracle_bounds(values, p)
    tolerance = alpha + 1e-9
    ok = (abs(estimate - low) <= tolerance * abs(low)
          or abs(estimate - high) <= tolerance * abs(high))
    assert ok, (f"p{p}: estimate {estimate} not within {alpha:%} of "
                f"rank-neighbours [{low}, {high}]")


def make_stream(name, n, seed=0):
    rng = random.Random(seed)
    if name == "uniform":
        return [rng.uniform(0.1, 100.0) for _ in range(n)]
    if name == "lognormal":
        return [rng.lognormvariate(0.0, 2.0) for _ in range(n)]
    if name == "heavy_tail":
        return [rng.paretovariate(1.2) for _ in range(n)]
    if name == "mixed_sign":
        return [rng.gauss(0.0, 50.0) for _ in range(n)]
    if name == "with_zeros":
        return [rng.choice((0.0, 0.0, rng.uniform(0, 10)))
                for _ in range(n)]
    raise ValueError(name)


STREAMS = ("uniform", "lognormal", "heavy_tail", "mixed_sign",
           "with_zeros")


class TestAccuracy:
    @pytest.mark.parametrize("stream", STREAMS)
    @pytest.mark.parametrize("p", (50, 90, 99, 99.9))
    def test_rank_error_bound(self, stream, p):
        values = make_stream(stream, 5000, seed=7)
        sketch = QuantileSketch(alpha=ALPHA)
        sketch.extend(values)
        assert_quantile_within_bound(sketch, values, p)

    def test_exact_moments(self):
        values = make_stream("lognormal", 1000, seed=3)
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.count == len(values)
        assert sketch.total == pytest.approx(sum(values), rel=1e-12)
        assert sketch.minimum == min(values)
        assert sketch.maximum == max(values)
        assert sketch.quantile(0) == min(values)
        assert sketch.quantile(100) == max(values)

    def test_zero_and_negative_buckets(self):
        sketch = QuantileSketch()
        sketch.extend([-5.0, -1.0, 0.0, 0.0, 1.0, 5.0])
        assert sketch.zero_count == 2
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(0) == -5.0
        assert_quantile_within_bound(
            sketch, [-5.0, -1.0, 0.0, 0.0, 1.0, 5.0], 99)

    def test_empty_and_bad_inputs(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(50)
        with pytest.raises(ValueError):
            sketch.observe(float("nan"))
        with pytest.raises(ValueError):
            sketch.observe(float("inf"))
        with pytest.raises(ValueError):
            sketch.quantile(101)
        with pytest.raises(ValueError):
            QuantileSketch(alpha=1.5)

    def test_summary_shape(self):
        sketch = QuantileSketch()
        sketch.extend(make_stream("uniform", 100))
        summary = sketch.summary()
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p90", "p99"}
        assert summary["min"] <= summary["p50"] <= summary["p99"] \
            <= summary["max"]


class TestMergeAlgebra:
    """merge() must be exactly associative and order-independent —
    verified on the full serialized state, not on query outputs."""

    def chunks(self, seed, n_chunks=5, chunk=400):
        return [make_stream("lognormal", chunk, seed=seed * 100 + i)
                for i in range(n_chunks)]

    def folded(self, groups):
        sketches = []
        for group in groups:
            sketch = QuantileSketch(alpha=ALPHA)
            sketch.extend(group)
            sketches.append(sketch)
        out = sketches[0]
        for other in sketches[1:]:
            out.merge(other)
        return out

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_associative(self, seed):
        a, b, c = self.chunks(seed, n_chunks=3)
        left = self.folded([a, b]).merge(self.folded([c]))
        right = self.folded([a]).merge(self.folded([b, c]))
        assert left == right
        # Bucket counts — hence every quantile answer — are exactly
        # identical; only the float `total` varies in its last ulp.
        left_state, right_state = left.to_dict(), right.to_dict()
        left_state.pop("total")
        right_state.pop("total")
        assert left_state == right_state
        for p in (50, 99, 99.9):
            assert left.quantile(p) == right.quantile(p)

    @pytest.mark.parametrize("seed", (1, 2, 3, 4))
    def test_commutative_and_order_independent(self, seed):
        groups = self.chunks(seed)
        reference = self.folded(groups)
        rng = random.Random(seed)
        for _ in range(4):
            shuffled = groups[:]
            rng.shuffle(shuffled)
            assert self.folded(shuffled) == reference

    def test_merge_equals_single_stream(self):
        groups = self.chunks(9)
        merged = self.folded(groups)
        single = QuantileSketch(alpha=ALPHA)
        for group in groups:
            single.extend(group)
        assert merged == single

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))
        with pytest.raises(ValueError):
            QuantileSketch(max_bins=64).merge(QuantileSketch(max_bins=65))

    def test_merge_preserves_accuracy(self):
        groups = self.chunks(11)
        merged = self.folded(groups)
        everything = [v for group in groups for v in group]
        for p in (50, 99, 99.9):
            assert_quantile_within_bound(merged, everything, p)


class TestDeterminismAndSerialization:
    def test_identical_streams_identical_state(self):
        a, b = QuantileSketch(), QuantileSketch()
        values = make_stream("heavy_tail", 2000, seed=5)
        a.extend(values)
        b.extend(values)
        assert a == b

    def test_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend(make_stream("mixed_sign", 500, seed=2))
        restored = QuantileSketch.from_dict(sketch.to_dict())
        assert restored == sketch
        assert restored.quantile(99) == sketch.quantile(99)

    def test_round_trip_survives_json(self):
        import json

        sketch = QuantileSketch()
        sketch.extend(make_stream("with_zeros", 300, seed=4))
        restored = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict())))
        assert restored == sketch


class TestCollapse:
    def test_collapse_keeps_count_and_tail_accuracy(self):
        # A span of ~1e12 at alpha=1% needs ~1400 buckets; cap at 64
        # to force the collapse path.
        sketch = QuantileSketch(alpha=ALPHA, max_bins=64)
        values = [10.0 ** (i % 12) * (1 + (i % 7) / 10)
                  for i in range(2000)]
        sketch.extend(values)
        assert sketch.collapsed
        assert sketch.count == len(values)
        assert len(sketch._bins) <= 64
        # Collapse folds *low* buckets: high quantiles stay accurate.
        assert_quantile_within_bound(sketch, values, 99)
        # Quantiles stay monotone even through the collapsed region.
        qs = [sketch.quantile(p) for p in (1, 10, 25, 50, 75, 90, 99)]
        assert qs == sorted(qs)


class TestCategoryTally:
    def test_add_merge_and_order(self):
        a = CategoryTally()
        a.add("iommu", 3)
        a.add("memory-bus")
        b = CategoryTally({"memory-bus": 4, "cpu-or-none": 2})
        a.merge(b)
        assert a.get("memory-bus") == 5
        assert a.total == 10
        assert a.most_common()[0] == ("memory-bus", 5)

    def test_round_trip_and_equality(self):
        tally = CategoryTally({"iommu": 2, "memory-bus": 1})
        assert CategoryTally.from_dict(tally.to_dict()) == tally


class TestDensity2D:
    def test_observe_and_total(self):
        grid = Density2D()
        grid.observe(0.5, 1e-3)
        grid.observe(0.5, 1e-3, n=2)
        grid.observe(0.9, 0.0)  # zero bin
        assert grid.total == 4
        assert len(grid) == 2

    def test_zero_bin_and_midpoints(self):
        grid = Density2D()
        grid.observe(0.25, 0.0)
        ((xi, yi), count), = grid.cells()
        assert yi == Density2D.ZERO_BIN
        assert grid.y_mid(yi) == 0.0
        assert 0.2 <= grid.x_mid(xi) <= 0.3
        assert count == 1

    def test_log_binning_resolution(self):
        # One decade apart must land in different bins; within ~1/8
        # decade may share one.
        grid = Density2D()
        grid.observe(0.5, 1e-4)
        grid.observe(0.5, 1e-3)
        assert len(grid) == 2

    def test_out_of_range_values_clamp(self):
        grid = Density2D()
        grid.observe(-5.0, 1e-3)   # below x_min
        grid.observe(99.0, 1e-3)   # above x_max
        grid.observe(0.5, 99.0)    # above y_ceil
        grid.observe(0.5, 1e-30)   # below y_floor -> zero bin
        assert grid.total == 4
        for x, y, _count in grid.points():
            assert 0.0 <= x <= 1.1
            assert 0.0 <= y <= 1.0

    def test_rejects_non_finite(self):
        grid = Density2D()
        with pytest.raises(ValueError):
            grid.observe(float("nan"), 1e-3)
        with pytest.raises(ValueError):
            grid.observe(0.5, float("inf"))

    def test_merge_is_exact_cell_addition(self):
        a, b, both = Density2D(), Density2D(), Density2D()
        rng = random.Random(3)
        for i in range(200):
            x = rng.random()
            y = rng.choice((0.0, 10 ** -rng.uniform(1, 6)))
            (a if i % 2 else b).observe(x, y)
            both.observe(x, y)
        assert a.merge(b) == both

    def test_merge_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            Density2D(x_bins=44).merge(Density2D(x_bins=10))

    def test_round_trip_and_equality(self):
        grid = Density2D()
        rng = random.Random(5)
        for _ in range(100):
            grid.observe(rng.random(), 10 ** -rng.uniform(0, 7))
        import json
        restored = Density2D.from_dict(
            json.loads(json.dumps(grid.to_dict())))
        assert restored == grid

    def test_count_where_predicates_on_midpoints(self):
        grid = Density2D()
        grid.observe(0.2, 1e-2)
        grid.observe(0.9, 1e-2)
        grid.observe(0.9, 0.0)
        low = grid.count_where(lambda x: x < 0.5, lambda y: True)
        droppers = grid.count_where(lambda x: True, lambda y: y > 1e-4)
        assert low == 1
        assert droppers == 2
