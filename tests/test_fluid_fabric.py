"""Fluid fabric profile: the calibrated aggregate stage must mirror
the packet engine's multi-tier plan, not approximate it.

For static and ECMP routing the per-path flow counts come from the
*same* ``repro.net.routing`` hash the packet fabric uses, so the
profile's capacity shares are exact.  These tests cross-check the
profile against an independently-built packet plan plus policy, which
is the contract that keeps ``analysis/xval`` honest.
"""

import dataclasses
from collections import Counter

import pytest

from repro.core.config import ExperimentConfig, FabricConfig
from repro.net.routing import create_policy
from repro.sim.fluid import FabricProfile, FluidRun, fluid_fabric_profile


def make_config(topology, routing, *, seed=1, senders=4, cores=2,
                **fabric_kwargs):
    cfg = ExperimentConfig(
        fabric=FabricConfig(topology=topology, routing=routing,
                            **fabric_kwargs))
    return dataclasses.replace(
        cfg,
        host=dataclasses.replace(
            cfg.host, cpu=dataclasses.replace(cfg.host.cpu,
                                              cores=cores)),
        workload=dataclasses.replace(cfg.workload, senders=senders),
        sim=dataclasses.replace(cfg.sim, seed=seed))


class TestStar:
    def test_star_has_no_fabric_stage(self):
        assert fluid_fabric_profile(ExperimentConfig()) is None


class TestDumbbellProfile:
    def test_static_funnels_everything_onto_trunk_zero(self):
        config = make_config("dumbbell", "static", trunk_links=2)
        profile = fluid_fabric_profile(config)
        assert isinstance(profile, FabricProfile)
        assert profile.free_fraction == 0.0
        assert len(profile.terms) == 1
        frac, cap, buf = profile.terms[0]
        assert frac == 1.0  # every flow rides the one selected trunk
        assert cap == pytest.approx(
            config.fabric.uplink_scale * config.link.rate_bps)
        assert buf == float(config.link.switch_buffer_bytes)

    def test_ecmp_counts_match_the_shared_routing_hash(self):
        """The exactness claim: per-trunk flow fractions equal what an
        independent policy instance (same seed) assigns."""
        config = make_config("dumbbell", "ecmp", seed=1, senders=8,
                             cores=2, trunk_links=2)
        profile = fluid_fabric_profile(config)
        n_h = 16
        policy = create_policy("ecmp", seed=config.sim.seed)
        counts = Counter(policy.select(f, 2, 0.0) for f in range(n_h))
        expected = sorted(counts[t] / n_h for t in range(2))
        assert sorted(t[0] for t in profile.terms) \
            == pytest.approx(expected)
        # seed 1 splits 16 flows unevenly — the imbalance the dumbbell
        # scenario's ECMP-vs-flowlet discrimination rests on
        assert profile.terms[0][0] != profile.terms[1][0]

    def test_flowlet_is_the_ideal_uniform_balance(self):
        config = make_config("dumbbell", "flowlet", trunk_links=4)
        profile = fluid_fabric_profile(config)
        assert len(profile.terms) == 4
        cap_link = config.fabric.uplink_scale * config.link.rate_bps
        for frac, cap, _ in profile.terms:
            assert frac == pytest.approx(1.0 / 4)
            # sole receiver owns every flow on each trunk, so each
            # term sees the trunk's full capacity
            assert cap == pytest.approx(cap_link)

    def test_capacity_share_follows_flow_share(self):
        """A trunk's capacity term scales by this host's share of the
        flows on it — with one receiver that share is 1."""
        config = make_config("dumbbell", "ecmp", seed=1, trunk_links=2)
        profile = fluid_fabric_profile(config)
        cap_link = config.fabric.uplink_scale * config.link.rate_bps
        for _frac, cap, _buf in profile.terms:
            assert cap == pytest.approx(cap_link)


class TestFattreeProfile:
    def test_free_fraction_counts_same_edge_flows(self):
        """Flows whose sender lands on the receiver's edge switch never
        cross a constrained link.  With k=4 (8 edges), receiver 0 on
        edge 0, senders 0..7 round-robin over edges: exactly sender 0
        is co-located, for every core's copy of the flow set."""
        config = make_config("fattree", "ecmp", senders=8, cores=2,
                             fattree_k=4)
        profile = fluid_fabric_profile(config)
        assert profile.free_fraction == pytest.approx(1.0 / 8)

    def test_terms_conserve_the_loaded_fraction(self):
        config = make_config("fattree", "ecmp", senders=8, cores=2,
                             fattree_k=4)
        profile = fluid_fabric_profile(config)
        assert sum(t[0] for t in profile.terms) + profile.free_fraction \
            == pytest.approx(1.0)

    def test_ecmp_downlink_counts_match_the_routing_hash(self):
        """Replay the profile's plan math independently: same endpoint
        placement, same equal-cost set sizes, same path-index → agg
        mapping, same hash — the per-downlink weights must agree."""
        config = make_config("fattree", "ecmp", seed=3, senders=8,
                            cores=2, fattree_k=4)
        profile = fluid_fabric_profile(config)
        k, half = 4, 2
        n_edges = k * half
        policy = create_policy("ecmp", seed=config.sim.seed)
        weights = Counter()
        host_edge, n_h = 0, 16
        for f in range(n_h):
            src_edge = (f % 8) % n_edges
            if src_edge == host_edge:
                continue
            same_pod = src_edge // half == host_edge // half
            n_paths = half if same_pod else half * half
            idx = policy.select(f, n_paths, 0.0)
            j = idx if same_pod else idx // half
            weights[j] += 1
        expected = sorted(w / n_h for w in weights.values())
        assert sorted(t[0] for t in profile.terms) \
            == pytest.approx(expected)

    def test_flowlet_spreads_over_both_downlinks(self):
        config = make_config("fattree", "flowlet", senders=8, cores=2,
                             fattree_k=4)
        profile = fluid_fabric_profile(config)
        loaded = 1.0 - profile.free_fraction
        assert len(profile.terms) == 2  # one per agg in the dest pod
        for frac, _cap, _buf in profile.terms:
            assert frac == pytest.approx(loaded / 2)


class TestFluidRunFabricFields:
    def test_defaults_are_zero(self):
        run = FluidRun()
        assert run.fabric_offered_packets == 0.0
        assert run.fabric_dropped_packets == 0.0
