"""The hierarchical timer wheel, checked against a plain-heap oracle.

The wheel's contract is *behavioural equivalence*: for any mix of
delays — sub-tick, each wheel level, and beyond the horizon — timers
filed through ``schedule_timer`` must fire in exactly the order and at
exactly the times that ``call`` (pure heap) produces, with the same
``events_dispatched`` count.  On top of that, cancellation must be
invisible: a cancelled timer never fires, is never counted, and leaves
every surviving timer's order untouched.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError
from repro.sim.wheel import OVERFLOW, TimerWheel

# Wheel geometry under test (the engine's defaults): tick = 2**-20 s,
# 8 bits/level, 3 levels -> horizon = 2**24 ticks = 16 s.
TICK = 2.0 ** -20
HORIZON_S = (1 << 24) * TICK

#: Delay pools spanning every placement path in the wheel.
DELAY_BANDS = (
    (0.0, TICK),                      # sub-tick: emitted straight to heap
    (TICK, (1 << 8) * TICK),          # level 0
    ((1 << 8) * TICK, (1 << 16) * TICK),   # level 1
    ((1 << 16) * TICK, HORIZON_S),    # level 2
    (HORIZON_S, 4 * HORIZON_S),       # overflow heap
)


def random_delays(rng, n):
    """``n`` delays, cycling through all bands with random jitter."""
    delays = []
    for i in range(n):
        lo, hi = DELAY_BANDS[i % len(DELAY_BANDS)]
        delays.append(rng.uniform(lo, hi))
    return delays


class TestAgainstHeapOracle:
    def check_equivalence(self, delays, cancel_every=0):
        """Schedule ``delays`` on a wheel sim (schedule_timer) and an
        oracle sim (call); the fire logs must match exactly."""
        wheel_log, oracle_log = [], []

        wheel_sim = Simulator()
        handles = []
        for i, d in enumerate(delays):
            handles.append(wheel_sim.schedule_timer(
                d, lambda i=i: wheel_log.append((wheel_sim.now, i))))
        cancelled = set()
        if cancel_every:
            for i in range(0, len(delays), cancel_every):
                assert handles[i].cancel()
                cancelled.add(i)
        wheel_sim.run()

        oracle_sim = Simulator()
        for i, d in enumerate(delays):
            if i not in cancelled:
                oracle_sim.call(
                    d, lambda i=i: oracle_log.append((oracle_sim.now, i)))
        oracle_sim.run()

        assert wheel_log == oracle_log
        assert wheel_sim.events_dispatched == oracle_sim.events_dispatched \
            == len(delays) - len(cancelled)

    def test_all_bands_fire_in_oracle_order(self):
        rng = random.Random(0xC0FFEE)
        self.check_equivalence(random_delays(rng, 500))

    def test_all_bands_with_cancellations(self):
        rng = random.Random(0xBEEF)
        self.check_equivalence(random_delays(rng, 500), cancel_every=3)

    def test_equal_time_timers_keep_insertion_order(self):
        # Many timers at the exact same instant: seq must break the tie
        # identically on both paths, across bucket-service boundaries.
        delays = [1e-3] * 50 + [2.5] * 50 + [20.0] * 50
        self.check_equivalence(delays)

    def test_interleaved_call_and_schedule_timer(self):
        # call() and schedule_timer() share one seq counter, so mixing
        # them at equal times must still dispatch in insertion order.
        sim = Simulator()
        log = []
        for i in range(20):
            if i % 2:
                sim.schedule_timer(1e-3, log.append, i)
            else:
                sim.call(1e-3, log.append, i)
        sim.run()
        assert log == list(range(20))

    def test_incremental_scheduling_from_callbacks(self):
        # Timers scheduled from within timer callbacks (the RTO re-arm
        # pattern) — `now` keeps moving, so placement uses fresh ticks.
        rng = random.Random(7)
        wheel_log, oracle_log = [], []

        def drive(sim, log, schedule):
            def step(remaining):
                log.append(sim.now)
                if remaining:
                    schedule(rng.uniform(0, 0.4), step, remaining - 1)

            schedule(0.0, step, 200)
            sim.run()

        sim_w = Simulator()
        drive(sim_w, wheel_log, sim_w.schedule_timer)
        rng = random.Random(7)  # identical delay sequence for the oracle
        sim_o = Simulator()
        drive(sim_o, oracle_log, sim_o.call)
        assert wheel_log == oracle_log


class TestCancellation:
    def test_cancelled_timer_never_fires_nor_counts(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule_timer(1e-3, fired.append, "keep")
        kill = sim.schedule_timer(1e-3, fired.append, "kill")
        assert kill.cancel()
        sim.run()
        assert fired == ["keep"]
        assert sim.events_dispatched == 1
        assert keep.cancelled is False

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_timer(1.0, lambda: None)
        assert handle.when == pytest.approx(1.0)
        assert handle.cancel() is True
        assert handle.cancelled is True
        assert handle.when is None
        assert handle.cancel() is False  # second cancel: already dead

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_timer(1e-3, fired.append, 1)
        sim.run()
        assert fired == [1]
        handle.cancel()  # entry already left the heap; nothing happens
        sim.run()
        assert fired == [1]
        assert sim.events_dispatched == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_timer(-1e-9, lambda: None)

    def test_cancel_storm_leaves_survivors_intact(self):
        # The bench_engine_micro churn pattern: every timer is cancelled
        # immediately; only the driving chain dispatches.
        sim = Simulator()
        fired = []

        def step(remaining):
            if remaining:
                sim.schedule_timer(1e-3, fired.append, remaining).cancel()
                sim.call(1e-9, step, remaining - 1)

        sim.call(0.0, step, 1000)
        sim.run()
        assert fired == []
        assert sim.events_dispatched == 1001


class TestOverflowRollover:
    def test_far_future_timer_fires_exactly(self):
        sim = Simulator()
        fired = []
        sim.schedule_timer(3 * HORIZON_S, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(3 * HORIZON_S, abs=2 * TICK)]
        assert sim.events_dispatched == 1

    def test_overflow_migrates_through_wheel(self):
        # A timer beyond the horizon must re-enter the wheel via the
        # OVERFLOW re-examination service, not sit in the lazy heap
        # until its own fire time.
        emitted = []
        services = []
        wheel = TimerWheel(emitted.append, lambda t, key: services.append(
            (t, key)))
        entry = [2 * HORIZON_S, 1, lambda: None, ()]
        wheel.schedule(entry, 0.0)
        assert wheel.pending == 1
        assert emitted == []
        assert services and services[0][1] is OVERFLOW
        reexam_time = services[0][0]
        assert reexam_time < 2 * HORIZON_S
        # Drive the service at its armed time: the timer now fits the
        # top wheel level and parks in a bucket (still not emitted).
        wheel.service(OVERFLOW, reexam_time)
        assert entry not in wheel._overflow
        assert wheel.pending == 1

    def test_cancelled_overflow_timer_is_dropped_at_service(self):
        wheel = TimerWheel(lambda e: None, lambda t, key: None)
        entry = [2 * HORIZON_S, 1, lambda: None, ()]
        wheel.schedule(entry, 0.0)
        entry[2] = entry[3] = None  # cancel in place
        wheel.service(OVERFLOW, HORIZON_S)
        assert wheel.pending == 0
        assert wheel._overflow == []

    def test_overflow_rearms_for_next_timer(self):
        sim = Simulator()
        fired = []
        # Two far-future timers a full horizon apart: the re-exam
        # service must re-arm itself after absorbing the first.
        sim.schedule_timer(2 * HORIZON_S, fired.append, "a")
        sim.schedule_timer(4 * HORIZON_S, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]
        assert sim.events_dispatched == 2


class TestWheelUnit:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TimerWheel(lambda e: None, lambda t, k: None, tick=0.0)
        with pytest.raises(ValueError):
            TimerWheel(lambda e: None, lambda t, k: None, slot_bits=0)
        with pytest.raises(ValueError):
            TimerWheel(lambda e: None, lambda t, k: None, levels=0)

    def test_subtick_timer_bypasses_wheel(self):
        emitted = []
        wheel = TimerWheel(emitted.append, lambda t, k: None)
        entry = [TICK / 2, 1, lambda: None, ()]
        wheel.schedule(entry, 0.0)
        assert emitted == [entry]
        assert wheel.pending == 0

    def test_bucket_shared_by_same_window_timers(self):
        # Two timers in the same level-0 bucket arm only one service.
        services = []
        wheel = TimerWheel(lambda e: None, lambda t, k: services.append(k))
        base = 100 * TICK
        wheel.schedule([base, 1, lambda: None, ()], 0.0)
        wheel.schedule([base + TICK / 4, 2, lambda: None, ()], 0.0)
        assert len(services) == 1
        assert wheel.pending == 2

    def test_dead_entries_dropped_at_bucket_service(self):
        emitted = []
        wheel = TimerWheel(emitted.append, lambda t, k: None)
        live = [100 * TICK, 1, lambda: None, ()]
        dead = [100 * TICK, 2, lambda: None, ()]
        wheel.schedule(live, 0.0)
        wheel.schedule(dead, 0.0)
        dead[2] = dead[3] = None
        (key,) = list(wheel._buckets)
        wheel.service(key, 100 * TICK)
        assert emitted == [live]

    def test_repr_mentions_population(self):
        wheel = TimerWheel(lambda e: None, lambda t, k: None)
        wheel.schedule([1.0, 1, lambda: None, ()], 0.0)
        assert "buckets=1" in repr(wheel)
