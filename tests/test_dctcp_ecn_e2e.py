"""End-to-end ECN behaviour: DCTCP vs fabric vs host congestion."""


import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    LinkConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import ExperimentHandle, run_experiment


def test_dctcp_controls_fabric_congestion_with_ecn():
    """With a slow fabric link, the switch queue is the bottleneck:
    DCTCP's ECN loop must keep it near the marking threshold instead
    of filling the 32 MB buffer."""
    config = ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=8)),
        link=LinkConfig(rate_bps=25e9, ecn_threshold_bytes=100_000),
        workload=WorkloadConfig(senders=8),
        transport="dctcp",
        sim=SimConfig(warmup=4e-3, duration=6e-3, seed=1))
    handle = ExperimentHandle(config)
    handle.run_warmup()
    handle.run_measurement()
    result = handle.collect()
    # Near-full fabric utilization...
    assert result.metrics["app_throughput_gbps"] > 18
    # ...without a runaway switch queue (stays within a few x of K).
    assert handle.workload.fabric.switch_queue_bytes() < 800_000
    assert result.metrics["fabric_drops"] == 0


def test_dctcp_blind_to_host_congestion():
    """The paper's point applied to DCTCP: host congestion produces no
    ECN marks, so DCTCP drops at the NIC just like (or worse than) a
    delay-based protocol."""
    def run(transport):
        config = ExperimentConfig(
            host=HostConfig(cpu=CpuConfig(cores=12)),
            transport=transport,
            sim=SimConfig(warmup=3e-3, duration=5e-3, seed=1))
        return run_experiment(config)

    dctcp = run("dctcp")
    assert dctcp.metrics["drop_rate"] > 0.01
    # And the drops are at the host, not the fabric.
    assert dctcp.metrics["fabric_drops"] == 0


def test_ecn_threshold_validated():
    with pytest.raises(ValueError):
        LinkConfig(ecn_threshold_bytes=0)
