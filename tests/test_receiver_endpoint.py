"""Unit tests for the receiver transport endpoint."""

import pytest

from repro.net.packet import Packet
from repro.transport.receiver import ReceiverEndpoint


def processed_pkt(seq, flow=0, sent_time=0.0, done=100e-6):
    p = Packet(flow_id=flow, seq=seq, payload_bytes=4096,
               wire_bytes=4452, sent_time=sent_time, thread_id=0)
    p.nic_arrival_time = done - 50e-6
    p.cpu_done_time = done
    return p


def make_endpoint(packets_per_read=4, now=100e-6):
    acks = []
    clock = {"now": now}
    endpoint = ReceiverEndpoint(
        send_ack=lambda ack, thread: acks.append((ack, thread)),
        packets_per_read=packets_per_read,
        now=lambda: clock["now"])
    return endpoint, acks, clock


def test_ack_generated_per_packet_with_host_delay():
    endpoint, acks, _ = make_endpoint()
    endpoint.on_packet(processed_pkt(0))
    assert len(acks) == 1
    ack, thread = acks[0]
    assert ack.seq == 0
    assert ack.host_delay == pytest.approx(50e-6)
    assert thread == 0


def test_ecn_echoed():
    endpoint, acks, _ = make_endpoint()
    p = processed_pkt(0)
    p.ecn_marked = True
    endpoint.on_packet(p)
    assert acks[0][0].ecn_echo


def test_message_completion_counts_full_reads():
    endpoint, _, clock = make_endpoint(packets_per_read=4)
    for seq in range(4):
        endpoint.on_packet(processed_pkt(seq, sent_time=10e-6))
    assert endpoint.messages_completed() == 1
    latencies = endpoint.all_message_latencies()
    assert len(latencies) == 1
    assert latencies[0] == pytest.approx(100e-6 - 10e-6)


def test_incomplete_read_not_counted():
    endpoint, _, _ = make_endpoint(packets_per_read=4)
    for seq in (0, 1, 2):
        endpoint.on_packet(processed_pkt(seq))
    assert endpoint.messages_completed() == 0


def test_out_of_order_read_still_completes():
    endpoint, _, _ = make_endpoint(packets_per_read=4)
    for seq in (3, 0, 2, 1):
        endpoint.on_packet(processed_pkt(seq))
    assert endpoint.messages_completed() == 1


def test_read_latency_uses_earliest_send_time():
    endpoint, _, _ = make_endpoint(packets_per_read=2)
    endpoint.on_packet(processed_pkt(1, sent_time=30e-6))
    endpoint.on_packet(processed_pkt(0, sent_time=10e-6))
    (latency,) = endpoint.all_message_latencies()
    assert latency == pytest.approx(90e-6)


def test_duplicates_acked_but_not_double_counted():
    endpoint, acks, _ = make_endpoint(packets_per_read=2)
    endpoint.on_packet(processed_pkt(0))
    endpoint.on_packet(processed_pkt(0))  # retransmission duplicate
    endpoint.on_packet(processed_pkt(1))
    assert len(acks) == 3  # every packet acked (sender needs it)
    assert endpoint.duplicates == 1
    assert endpoint.messages_completed() == 1


def test_flows_tracked_independently():
    endpoint, _, _ = make_endpoint(packets_per_read=2)
    endpoint.on_packet(processed_pkt(0, flow=1))
    endpoint.on_packet(processed_pkt(0, flow=2))
    endpoint.on_packet(processed_pkt(1, flow=1))
    assert endpoint.messages_completed() == 1


def test_reset_stats_clears_window():
    endpoint, _, _ = make_endpoint(packets_per_read=1)
    endpoint.on_packet(processed_pkt(0))
    endpoint.reset_stats()
    assert endpoint.messages_completed() == 0
    assert endpoint.packets_received == 0
    assert endpoint.all_message_latencies() == []


def test_bad_packets_per_read_rejected():
    with pytest.raises(ValueError):
        ReceiverEndpoint(send_ack=lambda a, t: None,
                         packets_per_read=0, now=lambda: 0.0)
