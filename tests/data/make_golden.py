#!/usr/bin/env python3
"""Regenerate golden_single_host.json (see test_golden_single_host.py).

Only run this after an *intentional* change to simulation behaviour —
the whole point of the golden file is that accidental changes fail CI.

    PYTHONPATH=src python tests/data/make_golden.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from test_golden_single_host import GOLDEN, golden_run  # noqa: E402

if __name__ == "__main__":
    GOLDEN.write_text(json.dumps(golden_run(), indent=1, sort_keys=True)
                      + "\n")
    print(f"wrote {GOLDEN}")
