"""GraphBuilder validation and multi-receiver topology end-to-end."""

import dataclasses

import pytest

from repro.core.config import ExperimentConfig, LinkConfig, WorkloadConfig
from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config, sweep_receivers
from repro.core.topology import GraphBuilder
from repro.net.fabric import Fabric
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator


def quick_config(receivers=1, **sim_overrides):
    base = baseline_config(warmup=1e-3, duration=2e-3, **sim_overrides)
    return dataclasses.replace(
        base,
        workload=dataclasses.replace(base.workload, receivers=receivers))


# -- builder / fabric validation ---------------------------------------------


def test_builder_rejects_zero_receivers():
    with pytest.raises(ValueError, match="at least one receiver"):
        GraphBuilder(baseline_config(), receivers=0)


def test_config_rejects_zero_receivers():
    with pytest.raises(ValueError, match="at least one receiver"):
        ExperimentConfig(workload=WorkloadConfig(receivers=0))


def test_fabric_rejects_empty_receiver_list():
    with pytest.raises(ValueError, match="at least one receiver"):
        Fabric(Simulator(), LinkConfig(), n_senders=1, receivers=[])


def test_fabric_requires_exactly_one_delivery_spec():
    sim = Simulator()
    with pytest.raises(ValueError, match="exactly one"):
        Fabric(sim, LinkConfig(), n_senders=1)
    with pytest.raises(ValueError, match="exactly one"):
        Fabric(sim, LinkConfig(), n_senders=1,
               deliver_to_host=lambda pkt: None,
               receivers=[lambda pkt: None])


def test_fabric_rejects_flow_routed_to_unknown_host():
    fabric = Fabric(Simulator(), LinkConfig(), n_senders=2,
                    receivers=[lambda pkt: None, lambda pkt: None])
    fabric.register_flow(0, lambda ack: None, host=1)
    with pytest.raises(ValueError, match="routed to unknown host"):
        fabric.register_flow(1, lambda ack: None, host=2)


def test_fabric_rejects_duplicate_flow():
    fabric = Fabric(Simulator(), LinkConfig(), n_senders=1,
                    receivers=[lambda pkt: None])
    fabric.register_flow(7, lambda ack: None)
    with pytest.raises(ValueError, match="already registered"):
        fabric.register_flow(7, lambda ack: None)


# -- multi-receiver end to end -----------------------------------------------


def test_two_receiver_run_namespaces_and_completes():
    config = quick_config(receivers=2)
    handles = []
    result = run_experiment(config, handle_out=handles)
    handle = handles[0]
    snapshot = handle.metrics.snapshot()
    for name in ("host0/nic.rx_packets", "host1/nic.rx_packets"):
        assert name in snapshot["counters"], name
        assert snapshot["counters"][name] > 0, name
    for name in ("host0.app_throughput_gbps", "host1.app_throughput_gbps"):
        assert name in snapshot["gauges"], name
    assert result.metrics["messages_completed"] > 0
    assert result.params["receivers"] == 2
    assert handle.topology.n_receivers == 2


def test_prefix_snapshot_selects_one_host_subtree():
    handles = []
    run_experiment(quick_config(receivers=2), handle_out=handles)
    subtree = handles[0].metrics.snapshot(prefix="host1/")
    assert subtree["counters"], "host1/ subtree is empty"
    assert all(name.startswith("host1/")
               for kind in ("counters", "gauges", "histograms")
               for name in subtree[kind])


def test_hosts_are_independent():
    """Congestion is a per-host phenomenon: each of M hosts sees its
    own senders-way incast, so per-host throughput stays close to the
    single-host value."""
    single = run_experiment(quick_config(receivers=1))
    handles = []
    double = run_experiment(quick_config(receivers=2), handle_out=handles)
    per_host = [host.snapshot()["app_throughput_gbps"]
                for host in handles[0].topology.hosts]
    baseline = single.metrics["app_throughput_gbps"]
    assert double.metrics["app_throughput_gbps"] > baseline * 1.5
    for tput in per_host:
        assert tput == pytest.approx(baseline, rel=0.15)


def test_topology_compat_surface():
    topology = GraphBuilder(quick_config(receivers=2)).build(Simulator())
    assert topology.host is topology.hosts[0]
    assert topology.receiver is topology.workloads[0].receiver
    per_host = topology.config.workload.senders * 12  # 12 cores
    assert len(topology.connections) == 2 * per_host


# -- sweep -------------------------------------------------------------------


def test_sweep_receivers_parallel_equals_serial():
    base = baseline_config(warmup=1e-3, duration=2e-3)
    serial = sweep_receivers(receivers=(1, 2), base=base)
    parallel = sweep_receivers(receivers=(1, 2), base=base, workers=2)
    assert serial == parallel
    assert [row.params["receivers"] for row in serial] == [1, 2]


def test_single_host_keeps_flat_metric_names():
    topology = GraphBuilder(quick_config(receivers=1)).build(Simulator())
    registry = MetricsRegistry()
    topology.bind_metrics(registry)
    assert "nic.rx_packets" in registry
    assert "host.app_throughput_gbps" in registry
    assert not any(name.startswith("host0") for name in registry.names())
