"""Unit tests for configuration validation and helpers."""

import dataclasses

import pytest

from repro.core import calibration as cal
from repro.core.config import (
    CpuConfig,
    DdioConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    LinkConfig,
    MemoryConfig,
    NicConfig,
    SimConfig,
    SwiftConfig,
    WorkloadConfig,
)


class TestCalibration:
    def test_max_app_goodput_is_92gbps(self):
        assert cal.MAX_APP_GOODPUT_BPS == pytest.approx(92e9, rel=0.001)

    def test_swift_blindspot_matches_paper_computation(self):
        # 1 MB buffer over the 100 µs target: ~83.9 Gbps of wire rate.
        assert cal.SWIFT_BLINDSPOT_WIRE_BPS == pytest.approx(
            2**20 * 8 / 100e-6)

    def test_inflight_window_is_five_packets(self):
        assert cal.PCIE_MAX_INFLIGHT_BYTES == 5 * 4452


class TestValidation:
    def test_iommu_ways_must_divide(self):
        with pytest.raises(ValueError):
            IommuConfig(iotlb_entries=128, iotlb_ways=7)

    def test_memory_achievable_within_theoretical(self):
        with pytest.raises(ValueError):
            MemoryConfig(achievable_Bps=200e9, theoretical_Bps=115e9)

    def test_memory_reservation_range(self):
        with pytest.raises(ValueError):
            MemoryConfig(nic_reserved_fraction=1.0)
        MemoryConfig(nic_reserved_fraction=0.5)

    def test_nic_buffer_fits_a_packet(self):
        with pytest.raises(ValueError):
            NicConfig(buffer_bytes=100)

    def test_nic_ack_coalescing_positive(self):
        with pytest.raises(ValueError):
            NicConfig(ack_coalescing=0)

    def test_cpu_cores_positive(self):
        with pytest.raises(ValueError):
            CpuConfig(cores=0)

    def test_cpu_flush_interval_positive(self):
        with pytest.raises(ValueError):
            CpuConfig(descriptor_flush_interval=0.0)

    def test_workload_receivers_minimum(self):
        with pytest.raises(ValueError):
            WorkloadConfig(receivers=0)

    def test_host_region_minimum(self):
        with pytest.raises(ValueError):
            HostConfig(rx_region_bytes=1000)

    def test_host_antagonists_non_negative(self):
        with pytest.raises(ValueError):
            HostConfig(antagonist_cores=-1)

    def test_swift_targets_positive(self):
        with pytest.raises(ValueError):
            SwiftConfig(host_target=0.0)
        with pytest.raises(ValueError):
            SwiftConfig(max_mdf=1.5)
        with pytest.raises(ValueError):
            SwiftConfig(hold_threshold=0.0)

    def test_workload_read_at_least_one_mtu(self):
        with pytest.raises(ValueError):
            WorkloadConfig(read_size_bytes=100)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(rate_bps=0)

    def test_sim_validation(self):
        with pytest.raises(ValueError):
            SimConfig(duration=0)
        with pytest.raises(ValueError):
            SimConfig(warmup=-1)

    def test_transport_name_checked(self):
        with pytest.raises(ValueError):
            ExperimentConfig(transport="reno")


class TestHelpers:
    def test_workload_wire_bytes(self):
        wl = WorkloadConfig()
        assert wl.wire_bytes_per_packet == 4096 + 356

    def test_workload_packets_per_read(self):
        assert WorkloadConfig(read_size_bytes=16384).packets_per_read == 4
        assert WorkloadConfig(read_size_bytes=10000).packets_per_read == 3

    def test_ddio_fractions_switch(self):
        on = DdioConfig(enabled=True).copy_demand_fractions()
        off = DdioConfig(enabled=False).copy_demand_fractions()
        assert on[0] < off[0]

    def test_host_with_helper(self):
        host = HostConfig()
        changed = host.with_(antagonist_cores=5)
        assert changed.antagonist_cores == 5
        assert host.antagonist_cores == 0

    def test_sim_end_time(self):
        assert SimConfig(warmup=1e-3, duration=2e-3).end_time == 3e-3

    def test_describe_flat_summary(self):
        desc = ExperimentConfig().describe()
        assert desc["transport"] == "swift"
        assert desc["cores"] == 12
        assert desc["rx_region_mb"] == 12.0

    def test_configs_are_frozen(self):
        cfg = HostConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.antagonist_cores = 3
