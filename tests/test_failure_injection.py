"""Failure-injection tests: the system under broken/extreme inputs."""

import random

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    LinkConfig,
    MemoryConfig,
    NicConfig,
    PcieConfig,
    SimConfig,
    SwiftConfig,
    WorkloadConfig,
)
from repro.core.experiment import run_experiment
from repro.host import ReceiverHost
from repro.host.pagetable import TranslationFault
from repro.net.packet import Packet
from repro.sim import Simulator


def test_dma_to_unmapped_address_faults_loudly():
    """A packet pointed at a thread with no registered layout must
    raise, not silently corrupt state."""
    sim = Simulator()
    host = ReceiverHost(sim, HostConfig(cpu=CpuConfig(cores=2)),
                        random.Random(0))
    host.attach_ack_egress(lambda a: None)
    host.attach_receiver(lambda p: None)
    # Forge a layout access outside registered space by unregistering.
    for region in host.layouts[0].all_regions():
        host.pagetable.unregister_region(region)
    # The DMA engine starts synchronously on arrival.
    with pytest.raises(TranslationFault):
        host.deliver_packet(Packet(0, 0, 4096, 4452, 0.0, 0))
        sim.run(until=1e-3)


def test_thread_id_out_of_range_raises():
    sim = Simulator()
    host = ReceiverHost(sim, HostConfig(cpu=CpuConfig(cores=2)),
                        random.Random(0))
    host.attach_ack_egress(lambda a: None)
    host.attach_receiver(lambda p: None)
    with pytest.raises(IndexError):
        host.deliver_packet(Packet(0, 0, 4096, 4452, 0.0, thread_id=7))
        sim.run(until=1e-3)


def test_tiny_nic_buffer_still_makes_progress():
    config = ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=4),
            nic=NicConfig(buffer_bytes=16 * 1024),  # ~3 packets
        ),
        workload=WorkloadConfig(senders=4),
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=1))
    result = run_experiment(config)
    assert result.metrics["app_throughput_gbps"] > 1
    assert result.metrics["drop_rate"] < 0.9


def test_tiny_iotlb_still_makes_progress():
    config = ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=4),
            iommu=IommuConfig(iotlb_entries=4, iotlb_ways=None),
        ),
        workload=WorkloadConfig(senders=4),
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=1))
    result = run_experiment(config)
    # Every access misses; throughput collapses but survives.
    assert result.metrics["iotlb_misses_per_packet"] > 4
    assert result.metrics["app_throughput_gbps"] > 1


def test_starved_memory_bus_does_not_deadlock():
    config = ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=4),
            antagonist_cores=15,
            memory=MemoryConfig(achievable_Bps=30e9),  # weak bus
        ),
        workload=WorkloadConfig(senders=4),
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=1))
    result = run_experiment(config)
    assert result.metrics["app_throughput_gbps"] > 0.5


def test_slow_fabric_link_is_the_bottleneck_not_the_host():
    config = ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=8)),
        link=LinkConfig(rate_bps=10e9),
        workload=WorkloadConfig(senders=4),
        sim=SimConfig(warmup=2e-3, duration=3e-3, seed=1))
    result = run_experiment(config)
    assert result.metrics["app_throughput_gbps"] < 10.5
    assert result.metrics["drop_rate"] < 0.01  # host never congests


def test_single_sender_single_core_minimal_topology():
    config = ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=1)),
        workload=WorkloadConfig(senders=1),
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=1))
    result = run_experiment(config)
    assert result.metrics["app_throughput_gbps"] == pytest.approx(
        11.5, rel=0.1)


def test_extreme_rto_storm_recovers():
    """Pathologically small RTO: constant spurious timeouts must not
    wedge the connection machinery."""
    config = ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=2)),
        workload=WorkloadConfig(senders=2),
        swift=SwiftConfig(rto=25e-6),  # below the RTT: fires spuriously
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=1))
    result = run_experiment(config)
    assert result.metrics["timeouts"] > 0
    assert result.metrics["app_throughput_gbps"] > 1


def test_pcie_slower_than_line_rate():
    """An x8-style link: PCIe becomes the hard ceiling."""
    config = ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=12),
            pcie=PcieConfig(raw_bps=63e9, goodput_bps=55e9),
        ),
        workload=WorkloadConfig(senders=8),
        sim=SimConfig(warmup=2e-3, duration=3e-3, seed=1))
    result = run_experiment(config)
    assert result.metrics["app_throughput_gbps"] < 55 * 0.93
    assert result.metrics["app_throughput_gbps"] > 30
