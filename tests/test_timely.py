"""Unit tests for the TIMELY congestion-control baseline."""

import pytest

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.timely import TimelyCC


def ack():
    return Ack(flow_id=0, seq=0, sent_time_echo=0.0, host_delay=0.0)


def make():
    return TimelyCC(SwiftConfig(), initial_cwnd=4.0)


def test_first_sample_only_primes_filter():
    cc = make()
    before = cc.cwnd()
    cc.on_ack(30e-6, ack(), now=1e-4)
    assert cc.cwnd() == before


def test_low_rtt_guard_increases():
    cc = make()
    cc.on_ack(30e-6, ack(), now=1e-4)
    before = cc.cwnd()
    cc.on_ack(30e-6, ack(), now=2e-4)  # below T_LOW: always increase
    assert cc.cwnd() > before


def test_high_rtt_guard_decreases():
    cc = make()
    cc.on_ack(30e-6, ack(), now=1e-4)
    before = cc.cwnd()
    cc.on_ack(2e-3, ack(), now=2e-4)  # above T_HIGH
    assert cc.cwnd() < before


def test_negative_gradient_increases():
    cc = make()
    # Decreasing RTT samples within [T_LOW, T_HIGH].
    for i, rtt in enumerate((300e-6, 280e-6, 260e-6, 240e-6)):
        cc.on_ack(rtt, ack(), now=(i + 1) * 1e-4)
    assert cc.cwnd() > 4.0


def test_positive_gradient_decreases():
    cc = make()
    for i, rtt in enumerate((100e-6, 200e-6, 300e-6, 400e-6)):
        cc.on_ack(rtt, ack(), now=(i + 1) * 1e-3)
    assert cc.cwnd() < 4.0


def test_hyperactive_increase_after_streak():
    cc = make()
    cc.on_ack(200e-6, ack(), now=0.0)
    # Long negative-gradient streak triggers HAI (bigger steps).
    gains = []
    rtt = 400e-6
    for i in range(8):
        before = cc.cwnd()
        rtt -= 10e-6
        cc.on_ack(rtt, ack(), now=(i + 1) * 1e-4)
        gains.append(cc.cwnd() - before)
    assert gains[-1] > gains[0]


def test_loss_and_timeout_handling():
    cfg = SwiftConfig()
    cc = TimelyCC(cfg, initial_cwnd=8.0)
    cc.on_loss(now=1e-3)
    assert cc.cwnd() == pytest.approx(8.0 * (1 - cfg.max_mdf))
    cc.on_timeout(now=2e-3)
    assert cc.cwnd() == cfg.min_cwnd


def test_cwnd_clamped():
    cfg = SwiftConfig(min_cwnd=0.5, max_cwnd=6.0)
    cc = TimelyCC(cfg, initial_cwnd=100.0)
    assert cc.cwnd() == 6.0


def test_timely_selectable_in_experiment():
    from repro.core.config import (
        CpuConfig,
        ExperimentConfig,
        HostConfig,
        SimConfig,
        WorkloadConfig,
    )
    from repro.core.experiment import run_experiment

    result = run_experiment(ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=4)),
        workload=WorkloadConfig(senders=8),
        transport="timely",
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=1)))
    assert result.metrics["app_throughput_gbps"] > 5
