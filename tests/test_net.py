"""Unit tests for packets, links, the switch port, and the fabric."""

import pytest

from repro.core.config import LinkConfig
from repro.net.fabric import Fabric
from repro.net.link import Link
from repro.net.packet import Ack, Packet
from repro.net.switch import SwitchPort
from repro.sim import Simulator
from repro.sim.engine import SimulationError


def pkt(seq=0, wire=4452, flow=0, thread=0):
    return Packet(flow_id=flow, seq=seq, payload_bytes=4096,
                  wire_bytes=wire, sent_time=0.0, thread_id=thread)


class TestPacket:
    def test_host_delay_requires_timestamps(self):
        p = pkt()
        with pytest.raises(SimulationError):
            p.host_delay()
        p.nic_arrival_time = 1.0
        p.cpu_done_time = 1.5
        assert p.host_delay() == pytest.approx(0.5)

    def test_repr_is_informative(self):
        assert "flow=3" in repr(pkt(flow=3))
        assert "Ack(flow=1" in repr(
            Ack(flow_id=1, seq=2, sent_time_echo=0.0, host_delay=0.0))


class TestPacketPool:
    def setup_method(self):
        # Isolate each test from pool contents left by earlier tests.
        Packet._pool.clear()

    def teardown_method(self):
        Packet._pool.clear()

    def test_acquire_reuses_released_packet(self):
        p = Packet.acquire(flow_id=1, seq=2, payload_bytes=4096,
                           wire_bytes=4452, sent_time=0.5, thread_id=3)
        p.ecn_marked = True
        p.nic_arrival_time = 1.0
        p.dma_done_time = 1.1
        p.cpu_done_time = 1.2
        p.release()
        q = Packet.acquire(flow_id=9, seq=0, payload_bytes=100,
                           wire_bytes=164, sent_time=2.0, thread_id=0,
                           is_retransmission=True)
        assert q is p  # recycled, not reallocated
        # ... and every slot was re-stamped.
        assert (q.flow_id, q.seq, q.payload_bytes, q.wire_bytes) == \
            (9, 0, 100, 164)
        assert q.sent_time == 2.0
        assert q.thread_id == 0
        assert q.is_retransmission is True
        assert q.ecn_marked is False
        assert q.nic_arrival_time is None
        assert q.dma_done_time is None
        assert q.cpu_done_time is None

    def test_acquire_constructs_when_pool_empty(self):
        a = Packet.acquire(flow_id=0, seq=0, payload_bytes=1,
                           wire_bytes=65, sent_time=0.0, thread_id=0)
        b = Packet.acquire(flow_id=0, seq=1, payload_bytes=1,
                           wire_bytes=65, sent_time=0.0, thread_id=0)
        assert a is not b

    def test_double_release_raises(self):
        p = pkt()
        p.release()
        with pytest.raises(SimulationError, match="double release"):
            p.release()

    def test_released_packet_host_delay_unstamped(self):
        # A recycled packet must not leak the previous life's timestamps
        # into host_delay().
        p = pkt()
        p.nic_arrival_time = 1.0
        p.cpu_done_time = 2.0
        p.release()
        q = Packet.acquire(flow_id=0, seq=0, payload_bytes=1,
                           wire_bytes=65, sent_time=0.0, thread_id=0)
        assert q is p
        with pytest.raises(SimulationError):
            q.host_delay()

    def test_pool_is_bounded(self):
        from repro.net.packet import _POOL_LIMIT
        Packet._pool.extend(pkt(seq=i) for i in range(_POOL_LIMIT))
        overflow = pkt(seq=-1)
        overflow.release()  # no room: dropped for the GC, no error
        assert len(Packet._pool) == _POOL_LIMIT
        assert overflow not in Packet._pool


class TestLink:
    def test_delivery_after_serialization_and_propagation(self):
        sim = Simulator()
        got = []
        link = Link(sim, rate_bps=100e9, prop_delay=10e-6,
                    deliver=got.append)
        p = pkt()
        arrival = link.send(p, p.wire_bytes)
        expected = 4452 * 8 / 100e9 + 10e-6
        assert arrival == pytest.approx(expected)
        sim.run()
        assert got == [p]
        assert sim.now == pytest.approx(expected)

    def test_back_to_back_sends_serialize(self):
        sim = Simulator()
        link = Link(sim, 100e9, 0.0, deliver=lambda p: None)
        a1 = link.send(pkt(0), 4452)
        a2 = link.send(pkt(1), 4452)
        assert a2 - a1 == pytest.approx(4452 * 8 / 100e9)

    def test_ordering_preserved(self):
        sim = Simulator()
        got = []
        link = Link(sim, 100e9, 5e-6, deliver=got.append)
        for i in range(5):
            link.send(pkt(i), 4452)
        sim.run()
        assert [p.seq for p in got] == list(range(5))

    def test_queueing_delay_visible(self):
        sim = Simulator()
        link = Link(sim, 100e9, 0.0, deliver=lambda p: None)
        assert link.queueing_delay() == 0.0
        link.send(pkt(), 4452)
        assert link.queueing_delay() > 0.0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0, 0.0, deliver=lambda p: None)
        with pytest.raises(ValueError):
            Link(sim, 1e9, -1.0, deliver=lambda p: None)
        link = Link(sim, 1e9, 0.0, deliver=lambda p: None)
        with pytest.raises(ValueError):
            link.send(pkt(), 0)

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, 100e9, 0.0, deliver=lambda p: None)
        link.send(pkt(), 12500)  # 1 µs of busy time
        sim.run()
        assert link.utilization(10e-6) == pytest.approx(0.1)


class TestSwitchPort:
    def make(self, rate=100e9, buffer_bytes=10**7, ecn=None):
        sim = Simulator()
        got = []
        port = SwitchPort(sim, rate, buffer_bytes, prop_delay=1e-6,
                          deliver=got.append, ecn_threshold_bytes=ecn)
        return sim, port, got

    def test_forwarding(self):
        sim, port, got = self.make()
        port.enqueue(pkt())
        sim.run()
        assert len(got) == 1
        assert sim.now == pytest.approx(4452 * 8 / 100e9 + 1e-6)

    def test_serializes_at_port_rate(self):
        sim, port, got = self.make()
        n = 100
        for i in range(n):
            port.enqueue(pkt(i))
        sim.run()
        # Last delivery at n*tx + prop.
        expected = n * 4452 * 8 / 100e9 + 1e-6
        assert sim.now == pytest.approx(expected)
        assert [p.seq for p in got] == list(range(n))

    def test_finite_buffer_drops(self):
        sim, port, got = self.make(buffer_bytes=10000)
        for i in range(5):
            port.enqueue(pkt(i))
        sim.run()
        assert port.dropped >= 1
        assert len(got) < 5

    def test_ecn_marking_above_threshold(self):
        sim, port, got = self.make(ecn=8000)
        for i in range(5):
            port.enqueue(pkt(i))
        sim.run()
        marked = [p for p in got if p.ecn_marked]
        unmarked = [p for p in got if not p.ecn_marked]
        assert marked and unmarked

    def test_no_ecn_when_disabled(self):
        sim, port, got = self.make()
        for i in range(5):
            port.enqueue(pkt(i))
        sim.run()
        assert not any(p.ecn_marked for p in got)


class TestFabric:
    def make(self, n_senders=3):
        sim = Simulator()
        delivered = []
        fabric = Fabric(sim, LinkConfig(), n_senders,
                        deliver_to_host=delivered.append)
        return sim, fabric, delivered

    def test_needs_a_sender(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Fabric(sim, LinkConfig(), 0, deliver_to_host=lambda p: None)

    def test_end_to_end_one_way_delay(self):
        sim, fabric, delivered = self.make()
        fabric.send_packet(0, pkt())
        sim.run()
        # serialization twice (sender link + port) + one-way prop.
        tx = 4452 * 8 / 100e9
        assert sim.now == pytest.approx(10e-6 + 2 * tx)
        assert len(delivered) == 1

    def test_ack_routing_to_registered_flow(self):
        sim, fabric, _ = self.make()
        got = []
        fabric.register_flow(7, got.append)
        ack = Ack(flow_id=7, seq=1, sent_time_echo=0.0, host_delay=0.0)
        fabric.route_ack(ack)
        sim.run()
        assert got == [ack]
        assert sim.now == pytest.approx(10e-6)

    def test_ack_for_unknown_flow_raises(self):
        sim, fabric, _ = self.make()
        with pytest.raises(KeyError):
            fabric.route_ack(
                Ack(flow_id=99, seq=0, sent_time_echo=0.0, host_delay=0.0))

    def test_duplicate_flow_registration_rejected(self):
        _, fabric, _ = self.make()
        fabric.register_flow(1, lambda a: None)
        with pytest.raises(ValueError):
            fabric.register_flow(1, lambda a: None)

    def test_incast_aggregates_at_port(self):
        sim, fabric, delivered = self.make(n_senders=3)
        for sender in range(3):
            for i in range(10):
                fabric.send_packet(sender, pkt(seq=i, flow=sender))
        sim.run()
        assert len(delivered) == 30
        assert fabric.fabric_drops() == 0
