"""Tests for the model-vs-simulation validation module."""

import pytest

from repro.analysis.validation import (
    ValidationPoint,
    ValidationReport,
    validate_model,
)


def point(measured, predicted, cores=12):
    return ValidationPoint(
        cores=cores, iommu=True, antagonist_cores=0,
        measured_gbps=measured, predicted_gbps=predicted,
        misses_per_packet=1.0)


class TestValidationPoint:
    def test_relative_error(self):
        assert point(100, 110).relative_error == pytest.approx(0.1)
        assert point(100, 90).relative_error == pytest.approx(0.1)

    def test_zero_measured_is_infinite(self):
        assert point(0, 10).relative_error == float("inf")


class TestValidationReport:
    def test_aggregates(self):
        report = ValidationReport([point(100, 105), point(100, 120)])
        assert report.mean_error == pytest.approx(0.125)
        assert report.max_error == pytest.approx(0.2)
        assert report.worst().predicted_gbps == 120

    def test_render_contains_rows_and_summary(self):
        report = ValidationReport([point(100, 105)])
        text = report.render()
        assert "measured" in text
        assert "mean error" in text


def test_validate_model_small_grid():
    report = validate_model(
        cores=(4, 12), iommu_states=(True,), antagonists=(0,),
        warmup=1.5e-3, duration=3e-3)
    assert len(report.points) == 2
    # CPU-bound point: model and sim agree tightly.
    cpu_bound = next(p for p in report.points if p.cores == 4)
    assert cpu_bound.relative_error < 0.05
    # Interconnect-bound point: within the documented budget.
    assert report.max_error < 0.3
