"""Routing policies: deterministic hashing, the registry, and the
flowlet gap-threshold state machine.

The load-bearing property is *bit-identical path selection* across
processes, worker counts, and ``PYTHONHASHSEED`` values: every policy
hashes with the explicit splitmix64 fold in ``stable_hash``, never the
interpreter's ``hash()``, and takes simulation time as an argument
instead of reading a clock.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.net.routing import (
    EcmpRouting,
    FlowletRouting,
    StaticRouting,
    available,
    create_policy,
    register_policy,
    stable_hash,
)

GAP = 100e-6


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(1, 2, 3) == stable_hash(1, 2, 3)

    def test_sensitive_to_every_part(self):
        base = stable_hash(1, 2, 3)
        assert stable_hash(9, 2, 3) != base
        assert stable_hash(1, 9, 3) != base
        assert stable_hash(1, 2, 9) != base

    def test_64_bit_range(self):
        for parts in [(0,), (1, 2), (2**63, 17)]:
            assert 0 <= stable_hash(*parts) < 2**64

    def test_independent_of_pythonhashseed(self):
        """The property built-in hash() cannot give: the same value in
        a subprocess with a different PYTHONHASHSEED."""
        src = Path(__file__).resolve().parent.parent / "src"
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.net.routing import stable_hash; "
             "print(stable_hash(7, 42, 3))"],
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
            capture_output=True, text=True, check=True)
        assert int(out.stdout) == stable_hash(7, 42, 3)

    def test_spreads_consecutive_flow_ids(self):
        """Consecutive ids must not alias onto one path (the pattern
        real incasts generate: flow ids 0..N-1)."""
        for n_paths in (2, 3, 4, 8):
            buckets = {stable_hash(1, flow) % n_paths
                       for flow in range(64)}
            assert buckets == set(range(n_paths))


class TestRegistry:
    def test_bundled_policies(self):
        assert set(available()) >= {"static", "ecmp", "flowlet"}

    def test_available_is_sorted(self):
        assert list(available()) == sorted(available())

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            create_policy("valiant", seed=1)

    def test_create_instantiates_types(self):
        assert isinstance(create_policy("static", seed=1), StaticRouting)
        assert isinstance(create_policy("ecmp", seed=1), EcmpRouting)
        flowlet = create_policy("flowlet", seed=1, flowlet_gap=5e-6)
        assert isinstance(flowlet, FlowletRouting)
        assert flowlet.gap_threshold == 5e-6

    def test_register_custom_policy(self):
        class Last(StaticRouting):
            def select(self, flow_id, n_paths, now):
                return n_paths - 1

        register_policy("last", lambda seed, flowlet_gap: Last(seed))
        try:
            assert "last" in available()
            assert create_policy("last", seed=0).select(5, 4, 0.0) == 3
        finally:
            from repro.net import routing
            del routing._REGISTRY["last"]


class TestStaticRouting:
    def test_always_first_path(self):
        policy = StaticRouting(seed=9)
        assert [policy.select(f, 4, 0.0) for f in range(16)] == [0] * 16


class TestEcmpRouting:
    def test_flow_pinned_for_run(self):
        policy = EcmpRouting(seed=2)
        first = [policy.select(f, 4, 0.0) for f in range(32)]
        later = [policy.select(f, 4, 123.0) for f in range(32)]
        assert first == later

    def test_two_instances_agree(self):
        """What makes the fluid profile's flow counts exact: a fresh
        policy object reproduces the packet fabric's assignments."""
        a, b = EcmpRouting(seed=3), EcmpRouting(seed=3)
        assert [a.select(f, 8, 0.0) for f in range(64)] \
            == [b.select(f, 8, 0.0) for f in range(64)]

    def test_seed_changes_assignment(self):
        a = [EcmpRouting(seed=1).select(f, 4, 0.0) for f in range(64)]
        b = [EcmpRouting(seed=2).select(f, 4, 0.0) for f in range(64)]
        assert a != b

    def test_in_range_and_single_path_short_circuit(self):
        policy = EcmpRouting(seed=5)
        assert all(0 <= policy.select(f, 3, 0.0) < 3 for f in range(64))
        assert policy.select(11, 1, 0.0) == 0


class TestFlowletRouting:
    def test_gap_at_threshold_keeps_path(self):
        """A gap of exactly the threshold does NOT end the flowlet:
        rehashing requires ``now - last > gap``, so the boundary packet
        stays in-order on the same path."""
        policy = FlowletRouting(seed=1, gap_threshold=GAP)
        first = policy.select(7, 4, 0.0)
        assert policy.select(7, 4, GAP) == first
        # the timer restarts from the last packet, not the flowlet start
        assert policy.select(7, 4, 2 * GAP) == first

    def test_gap_over_threshold_rehashes(self):
        policy = FlowletRouting(seed=1, gap_threshold=GAP)
        policy.select(7, 4, 0.0)
        state_before = policy._state[7]
        policy.select(7, 4, GAP * 1.001)
        last, flowlet, _ = policy._state[7]
        assert flowlet == state_before[1] + 1
        assert last == pytest.approx(GAP * 1.001)

    def test_rehash_path_matches_stable_hash(self):
        policy = FlowletRouting(seed=6, gap_threshold=GAP)
        assert policy.select(3, 4, 0.0) == stable_hash(6, 3, 0) % 4
        assert policy.select(3, 4, GAP * 2) == stable_hash(6, 3, 1) % 4

    def test_flowlets_spread_over_paths(self):
        """Across many flowlets of one flow, multiple paths get used —
        the whole point of gap switching."""
        policy = FlowletRouting(seed=2, gap_threshold=GAP)
        paths = {policy.select(1, 4, i * 10 * GAP) for i in range(32)}
        assert len(paths) > 1

    def test_single_path_short_circuit_keeps_no_state(self):
        policy = FlowletRouting(seed=1, gap_threshold=GAP)
        assert policy.select(9, 1, 0.0) == 0
        assert 9 not in policy._state

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            FlowletRouting(seed=1, gap_threshold=0.0)
