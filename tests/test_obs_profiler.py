"""Tests for the simulation profiler (obs.profiler)."""

import pytest

from repro.obs.profiler import SimProfiler
from repro.sim.engine import Simulator


class Ticker:
    """A self-rescheduling callback component for dispatch accounting."""

    def __init__(self, sim, period, limit):
        self.sim = sim
        self.period = period
        self.limit = limit
        self.fired = 0

    def start(self):
        self.sim.call(self.period, self.tick)

    def tick(self):
        self.fired += 1
        if self.fired < self.limit:
            self.sim.call(self.period, self.tick)


def test_counts_every_dispatched_event():
    sim = Simulator()
    ticker = Ticker(sim, 1e-6, 50)
    ticker.start()
    profiler = SimProfiler(sim)
    profiler.install()
    sim.run()
    assert ticker.fired == 50
    assert profiler.events == 50
    assert sim.events_dispatched == 50  # hook does not double-dispatch


def test_per_component_attribution():
    sim = Simulator()
    a = Ticker(sim, 1e-6, 10)
    b = Ticker(sim, 2e-6, 5)
    a.start()
    b.start()
    with SimProfiler(sim) as profiler:
        sim.run()
    report = profiler.report()
    # Both tickers are the same class, so they share one component bucket.
    assert report["components"]["Ticker"]["events"] == 15
    assert report["callbacks"]["Ticker.tick"]["count"] == 15


def test_plain_function_component():
    sim = Simulator()
    sim.call(1e-6, lambda: None)
    with SimProfiler(sim) as profiler:
        sim.run()
    assert profiler.report()["components"]["<function>"]["events"] == 1


def test_report_shape_and_ratios():
    sim = Simulator()
    Ticker(sim, 1e-6, 200).start()
    with SimProfiler(sim) as profiler:
        sim.run()
    report = profiler.report()
    assert set(report) == {"events", "wall_s", "events_per_sec",
                           "sim_time_s", "sim_wall_ratio", "heap_depth",
                           "components", "callbacks"}
    assert report["events"] == 200
    assert report["wall_s"] > 0
    assert report["events_per_sec"] > 0
    assert report["sim_time_s"] == pytest.approx(200e-6)
    assert report["sim_wall_ratio"] == pytest.approx(
        report["sim_time_s"] / report["wall_s"])
    assert report["heap_depth"]["samples"] >= 1
    cb = report["callbacks"]["Ticker.tick"]
    assert cb["mean_us"] == pytest.approx(cb["wall_s"] / cb["count"] * 1e6)


def test_uninstall_restores_direct_dispatch():
    sim = Simulator()
    Ticker(sim, 1e-6, 10).start()
    profiler = SimProfiler(sim)
    profiler.install()
    profiler.uninstall()
    sim.run()
    assert profiler.events == 0
    assert sim.events_dispatched == 10


def test_heap_sampling_interval():
    sim = Simulator()
    Ticker(sim, 1e-6, 130).start()
    with SimProfiler(sim, sample_heap_every=64) as profiler:
        sim.run()
    assert profiler.report()["heap_depth"]["samples"] == 2  # 130 // 64


def test_empty_report_is_safe():
    sim = Simulator()
    report = SimProfiler(sim).report()
    assert report["events"] == 0
    assert report["events_per_sec"] == 0.0
    assert report["sim_wall_ratio"] == 0.0
    assert report["heap_depth"]["mean"] == 0.0


def test_format_report_renders():
    sim = Simulator()
    Ticker(sim, 1e-6, 20).start()
    with SimProfiler(sim) as profiler:
        sim.run()
    text = profiler.format_report()
    assert "events/sec" in text
    assert "Ticker.tick" in text


def test_bad_sample_interval_rejected():
    with pytest.raises(ValueError):
        SimProfiler(Simulator(), sample_heap_every=0)
