"""Focused tests on Swift's stability machinery (flow scaling, hold
band) — the pieces that keep 480-640 incast flows from oscillating."""

import pytest

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.swift import SwiftCC


def ack(host_delay=1e-6):
    return Ack(flow_id=0, seq=0, sent_time_echo=0.0,
               host_delay=host_delay)


class TestFlowScaling:
    def test_target_monotone_decreasing_in_cwnd(self):
        cfg = SwiftConfig()
        targets = []
        for cwnd in (0.05, 0.2, 1.0, 4.0, 64.0):
            cc = SwiftCC(cfg, initial_cwnd=cwnd)
            targets.append(cc.fabric_target())
        assert targets == sorted(targets, reverse=True)

    def test_target_capped(self):
        cfg = SwiftConfig(flow_scaling_max=50e-6)
        cc = SwiftCC(cfg, initial_cwnd=cfg.min_cwnd)
        assert cc.fabric_target() <= cfg.fabric_target + 50e-6

    def test_zero_alpha_disables_scaling(self):
        cfg = SwiftConfig(flow_scaling_alpha=0.0)
        small = SwiftCC(cfg, initial_cwnd=0.05)
        big = SwiftCC(cfg, initial_cwnd=64.0)
        assert small.fabric_target() == big.fabric_target()

    def test_small_flow_tolerates_delay_a_large_flow_cuts_on(self):
        cfg = SwiftConfig()
        small = SwiftCC(cfg, initial_cwnd=0.05)
        big = SwiftCC(cfg, initial_cwnd=64.0)
        # A fabric delay between the two effective targets.
        delay = (small.fabric_target() + big.fabric_target()) / 2
        small_before, big_before = small.cwnd(), big.cwnd()
        small.on_ack(delay + 1e-6, ack(), now=1e-3)
        big.on_ack(delay + 1e-6, ack(), now=1e-3)
        assert small.cwnd() >= small_before   # under its scaled target
        assert big.cwnd() < big_before        # over its target: cuts


class TestHoldBandAsymmetry:
    def test_host_loop_increases_up_to_target(self):
        # 0.95 of the HOST target: must still increase (the blind
        # spot); the hold band applies only to the fabric loop.
        cfg = SwiftConfig(flow_scaling_alpha=0.0)
        cc = SwiftCC(cfg, initial_cwnd=2.0)
        before = cc.cwnd()
        cc.on_ack(0.95 * cfg.host_target + 1e-6,
                  ack(host_delay=0.95 * cfg.host_target), now=1e-3)
        assert cc.cwnd() > before

    def test_fabric_loop_holds_in_band(self):
        cfg = SwiftConfig(flow_scaling_alpha=0.0, hold_threshold=0.85)
        cc = SwiftCC(cfg, initial_cwnd=2.0)
        before = cc.cwnd()
        fabric_delay = 0.9 * cfg.fabric_target
        cc.on_ack(fabric_delay + 1e-6, ack(host_delay=1e-6), now=1e-3)
        assert cc.cwnd() == before

    def test_fabric_loop_increases_below_band(self):
        cfg = SwiftConfig(flow_scaling_alpha=0.0, hold_threshold=0.85)
        cc = SwiftCC(cfg, initial_cwnd=2.0)
        before = cc.cwnd()
        fabric_delay = 0.5 * cfg.fabric_target
        cc.on_ack(fabric_delay + 1e-6, ack(host_delay=1e-6), now=1e-3)
        assert cc.cwnd() > before


class TestDecreaseProportionality:
    @pytest.mark.parametrize("excess_factor,expected_smaller", [
        (1.2, False),
        (3.0, True),
    ])
    def test_bigger_excess_bigger_cut(self, excess_factor,
                                      expected_smaller):
        cfg = SwiftConfig(flow_scaling_alpha=0.0)
        mild = SwiftCC(cfg, initial_cwnd=8.0)
        mild.on_ack(1e-6 + 1.2 * cfg.host_target,
                    ack(host_delay=1.2 * cfg.host_target), now=1e-3)
        harsh = SwiftCC(cfg, initial_cwnd=8.0)
        harsh.on_ack(1e-6 + excess_factor * cfg.host_target,
                     ack(host_delay=excess_factor * cfg.host_target),
                     now=1e-3)
        if expected_smaller:
            assert harsh.cwnd() < mild.cwnd()
        else:
            assert harsh.cwnd() == pytest.approx(mild.cwnd())

    def test_decrease_floor_is_max_mdf(self):
        cfg = SwiftConfig(max_mdf=0.5, flow_scaling_alpha=0.0)
        cc = SwiftCC(cfg, initial_cwnd=8.0)
        cc.on_ack(1.0, ack(host_delay=1.0), now=1e-3)  # absurd delay
        assert cc.cwnd() == pytest.approx(4.0)
