"""The fluid engine's contracts that don't need a packet run: mirrored
host-layer constants, config plumbing, result-schema parity, and the
PR-5 error contract for fidelity validation.

Cross-fidelity *agreement* (knees, winners, tolerances) lives in
``tests/test_fluid_xval.py``; this file holds the fast invariants.
"""

import dataclasses

import pytest

from repro.cli import main
from repro.core.cache import config_digest
from repro.core.config import (
    FIDELITIES,
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    SimConfig,
)
from repro.core.experiment import run_experiment
from repro.core.scenario import ScenarioError, load_scenario_file
from repro.sim import fluid


def quick_config(fidelity="fluid", cores=12, iommu=True,
                 hugepages=True):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores),
                        iommu=IommuConfig(enabled=iommu),
                        hugepages=hugepages),
        sim=SimConfig(warmup=2e-4, duration=1e-3),
        fidelity=fidelity,
    )


# -- mirrored host-layer constants (see fluid.py module docstring) -------


def test_page_sizes_match_addressing_layer():
    from repro.host import addressing

    assert fluid.PAGE_4K == addressing.PAGE_4K
    assert fluid.PAGE_2M == addressing.PAGE_2M


def test_queue_curve_matches_memory_layer():
    from repro.host import memory

    assert fluid.QUEUE_KNEE == memory.QUEUE_KNEE
    assert fluid.QUEUE_GAMMA == memory.QUEUE_GAMMA


def test_control_writes_match_nic_layer():
    from repro.host import nic

    assert fluid.NIC_CONTROL_WRITE_BYTES == nic._CONTROL_WRITE_BYTES


@pytest.mark.parametrize("hugepages", [False, True])
@pytest.mark.parametrize("cores", [2, 8, 16])
def test_working_set_matches_core_model(cores, hugepages):
    """``fluid_working_set`` recomputes ``iotlb_working_set`` from the
    raw config (the kernel layer may not import repro.core.model); the
    two must agree at every operating point, including the hot-ring
    literal baked into the model function body."""
    from repro.core.model import iotlb_working_set

    config = quick_config(cores=cores, hugepages=hugepages)
    pages, accesses = fluid.fluid_working_set(config)
    ws = iotlb_working_set(config.host)
    assert pages == ws.total_pages
    assert accesses == ws.accesses_per_packet


# -- fidelity plumbing ---------------------------------------------------


def test_unknown_fidelity_rejected_by_config():
    with pytest.raises(ValueError, match="fidelity") as exc:
        quick_config(fidelity="warp")
    # The error must name the valid choices (PR-5 error contract).
    for name in FIDELITIES:
        assert name in str(exc.value)


def test_unknown_fidelity_in_spec_names_key_and_file(tmp_path):
    path = tmp_path / "bad_fidelity.toml"
    path.write_text(
        '[scenario]\n'
        'name = "bad_fidelity"\n'
        'title = "bad"\n'
        'driver = "sweep"\n'
        'fidelity = "warp"\n'
    )
    with pytest.raises(ScenarioError) as exc:
        load_scenario_file(path)
    message = str(exc.value)
    assert "fidelity" in message
    assert "bad_fidelity.toml" in message
    assert "warp" in message


def test_fidelity_is_part_of_the_cache_key():
    packet = quick_config(fidelity="packet")
    fluid_cfg = dataclasses.replace(packet, fidelity="fluid")
    assert config_digest(packet) != config_digest(fluid_cfg)


def test_scenario_list_shows_fidelity(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    # Every bundled spec currently defaults to the packet engine; the
    # tag format is "[driver/fidelity]" (padded for alignment).
    assert "[sweep/packet" in out
    assert "[day/packet" in out


# -- result-schema parity ------------------------------------------------


def test_fluid_result_matches_packet_schema():
    """Same metric names, same snapshot sections: downstream consumers
    (ResultTable, figures, ledgers) must never branch on fidelity."""
    f_result = run_experiment(quick_config())
    p_result = run_experiment(quick_config(fidelity="packet"))
    assert set(f_result.metrics) == set(p_result.metrics)
    assert set(f_result.message_latency_us) \
        == set(p_result.message_latency_us)


def test_fluid_metrics_snapshot_sections():
    handle_out = []
    run_experiment(quick_config(), handle_out=handle_out)
    snapshot = handle_out[0].metrics_snapshot()
    assert snapshot["meta"]["fidelity"] == "fluid"
    # The packet engine's metric names, verbatim (one schema across
    # fidelities for --metrics-out payloads and ledger rows).
    assert snapshot["counters"]["nic.rx_packets"] > 0
    assert snapshot["gauges"]["host.app_throughput_gbps"] > 0
    assert snapshot["histograms"]["nic.host_delay_us"]["count"] > 0


def test_fluid_sane_at_the_uncongested_point():
    """12 cores, IOMMU off: no host bottleneck, so the fluid host must
    deliver most of the link and drop (almost) nothing."""
    result = run_experiment(quick_config(iommu=False, cores=12))
    assert result.metrics["drop_rate"] < 0.01
    assert result.metrics["app_throughput_gbps"] > 70.0
