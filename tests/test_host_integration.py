"""Integration tests of the assembled receiver host datapath."""

import random

import pytest

from repro.core.config import (
    CpuConfig,
    HostConfig,
    IommuConfig,
)
from repro.host import ReceiverHost
from repro.net.packet import Ack, Packet
from repro.sim import Simulator


def make_host(cores=4, iommu=True, antagonists=0, hugepages=True,
              acks=True):
    sim = Simulator()
    config = HostConfig(
        cpu=CpuConfig(cores=cores),
        iommu=IommuConfig(enabled=iommu),
        hugepages=hugepages,
        antagonist_cores=antagonists,
    )
    host = ReceiverHost(sim, config, random.Random(1))
    egress = []
    host.attach_ack_egress(egress.append)
    processed = []

    def on_packet(pkt):
        processed.append(pkt)
        if acks:
            host.send_ack(
                Ack(pkt.flow_id, pkt.seq, pkt.sent_time,
                    pkt.host_delay()), pkt.thread_id)

    host.attach_receiver(on_packet)
    return sim, host, processed, egress


def inject(sim, host, n, cores, rate_gbps=90.0, wire=4452):
    interval = wire * 8 / (rate_gbps * 1e9)
    for i in range(n):
        pkt = Packet(flow_id=0, seq=i, payload_bytes=4096,
                     wire_bytes=wire, sent_time=i * interval,
                     thread_id=i % cores)
        sim.at(i * interval, host.deliver_packet, pkt)


def test_packets_traverse_the_full_pipeline():
    sim, host, processed, egress = make_host()
    inject(sim, host, 100, cores=4, rate_gbps=40)
    sim.run(until=5e-3)
    assert len(processed) == 100
    assert len(egress) == 100
    for pkt in processed:
        assert pkt.nic_arrival_time is not None
        assert pkt.dma_done_time >= pkt.nic_arrival_time
        assert pkt.cpu_done_time > pkt.dma_done_time


def test_iommu_entries_scale_with_cores():
    _, host4, _, _ = make_host(cores=4)
    _, host8, _, _ = make_host(cores=8)
    assert host8.registered_iommu_entries() == \
        2 * host4.registered_iommu_entries()


def test_snapshot_contains_all_headline_metrics():
    sim, host, _, _ = make_host()
    inject(sim, host, 50, cores=4, rate_gbps=40)
    sim.run(until=5e-3)
    snapshot = host.snapshot()
    for key in ("app_throughput_gbps", "wire_arrival_gbps", "drop_rate",
                "iotlb_misses_per_packet", "memory_utilization",
                "memory_total_GBps", "mean_dma_latency_us",
                "mean_nic_delay_us", "nic_buffer_peak_fraction",
                "iommu_entries"):
        assert key in snapshot
    assert snapshot["app_throughput_gbps"] > 0


def test_throughput_accounting_consistent():
    sim, host, processed, _ = make_host()
    inject(sim, host, 200, cores=4, rate_gbps=40)
    sim.run(until=5e-3)
    payload_bits = sum(p.payload_bytes for p in processed) * 8
    assert host.app_throughput_bps() == pytest.approx(
        payload_bits / host.elapsed)


def test_host_delay_reported_in_acks():
    sim, host, _, egress = make_host()
    inject(sim, host, 10, cores=4, rate_gbps=10)
    sim.run(until=5e-3)
    for ack in egress:
        assert ack.host_delay > 0
        assert ack.nic_buffer_fraction >= 0
        assert 0 <= ack.memory_utilization <= 1


def test_antagonist_registers_memory_demand():
    sim, host, _, _ = make_host(antagonists=10)
    sim.run(until=1e-3)
    assert host.memory.utilization > 0.5


def test_reset_stats_gives_clean_window():
    sim, host, processed, _ = make_host()
    inject(sim, host, 100, cores=4, rate_gbps=40)
    sim.run(until=2e-3)
    host.reset_stats()
    snap = host.snapshot()
    assert snap["app_throughput_gbps"] == 0.0
    assert host.nic.rx_packets == 0
    # Fresh traffic after the reset is accounted in the new window.
    for i in range(50):
        pkt = Packet(flow_id=0, seq=1000 + i, payload_bytes=4096,
                     wire_bytes=4452, sent_time=sim.now, thread_id=i % 4)
        sim.call(i * 1e-6, host.deliver_packet, pkt)
    sim.run(until=5e-3)
    assert host.snapshot()["app_throughput_gbps"] > 0


def test_overload_drops_at_nic_not_fabric():
    # 4 cores can only process ~46 Gbps; offer 95 Gbps open loop with
    # no CC: the NIC buffer must fill and drop (descriptors deplete).
    sim, host, processed, _ = make_host(cores=2)
    inject(sim, host, 4000, cores=2, rate_gbps=95)
    sim.run(until=3e-3)
    assert host.nic.dropped_packets > 0


def test_send_ack_without_egress_raises():
    sim = Simulator()
    host = ReceiverHost(sim, HostConfig(), random.Random(0))
    with pytest.raises(RuntimeError):
        host.send_ack(Ack(0, 0, 0.0, 0.0), 0)


def test_hugepages_off_registers_512x_data_pages():
    _, on, _, _ = make_host(hugepages=True, cores=2)
    _, off, _, _ = make_host(hugepages=False, cores=2)
    assert off.registered_iommu_entries() > \
        100 * on.registered_iommu_entries()


def test_iotlb_misses_metric_counts_rx_and_tx():
    sim, host, _, _ = make_host(cores=2, iommu=True)
    inject(sim, host, 50, cores=2, rate_gbps=20)
    sim.run(until=5e-3)
    assert host.iotlb_misses_per_packet() >= 0
    assert host.iommu.translations >= 50  # rx at least; + tx acks
