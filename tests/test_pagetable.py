"""Unit tests for the IOMMU page table and walk-cost model."""

import pytest

from repro.host.addressing import PAGE_2M, PAGE_4K, Region
from repro.host.pagetable import PageTable, TranslationFault


def region_4k(n_pages=4, base=0):
    return Region(base=base, size=n_pages * PAGE_4K, page_size=PAGE_4K)


def region_2m(n_pages=2, base=1 << 31):
    return Region(base=base, size=n_pages * PAGE_2M, page_size=PAGE_2M)


def test_register_and_count_entries():
    table = PageTable()
    table.register_region(region_4k(4))
    assert table.entry_count == 4
    table.register_region(region_2m(2))
    assert table.entry_count == 6


def test_unregister_removes_entries():
    table = PageTable()
    region = region_4k(4)
    table.register_region(region)
    table.unregister_region(region)
    assert table.entry_count == 0


def test_walk_unmapped_page_faults():
    table = PageTable()
    with pytest.raises(TranslationFault):
        table.walk(0xdead000)


def test_page_size_of_mapped_pages():
    table = PageTable()
    table.register_region(region_4k(1, base=0))
    table.register_region(region_2m(1))
    assert table.page_size_of(0) == PAGE_4K
    assert table.page_size_of(1 << 31) == PAGE_2M


def test_first_walk_costs_multiple_accesses():
    # Cold walk caches: the leaf plus every upper level misses.
    table = PageTable(walk_cache_entries=8)
    table.register_region(region_4k(1))
    assert table.walk(0) == 4  # leaf + PD + PDPT + PML4


def test_repeat_walk_costs_one_access():
    table = PageTable(walk_cache_entries=8)
    table.register_region(region_4k(1))
    table.walk(0)
    assert table.walk(0) == 1  # upper levels cached


def test_hugepage_walk_is_shorter():
    table = PageTable(walk_cache_entries=8)
    table.register_region(region_2m(1))
    assert table.walk(1 << 31) == 3  # leaf(PD) + PDPT + PML4


def test_neighbouring_pages_share_upper_levels():
    table = PageTable(walk_cache_entries=8)
    table.register_region(region_4k(2))
    table.walk(0)
    # Second page shares PD/PDPT/PML4 entries with the first.
    assert table.walk(PAGE_4K) == 1


def test_zero_walk_cache_always_pays_full_walk():
    table = PageTable(walk_cache_entries=0)
    table.register_region(region_4k(1))
    table.walk(0)
    assert table.walk(0) == 4


def test_walk_cache_capacity_evicts():
    table = PageTable(walk_cache_entries=1)
    # Two regions far apart: distinct PD entries compete for 1 slot.
    a = region_4k(1, base=0)
    b = region_4k(1, base=1 << 30)  # different PD and PDPT index
    table.register_region(a)
    table.register_region(b)
    table.walk(0)
    table.walk(1 << 30)     # evicts a's upper entries
    assert table.walk(0) > 1


def test_mean_walk_accesses_statistic():
    table = PageTable(walk_cache_entries=8)
    table.register_region(region_4k(1))
    assert table.mean_walk_accesses() == 0.0
    table.walk(0)
    table.walk(0)
    assert table.mean_walk_accesses() == pytest.approx((4 + 1) / 2)


def test_negative_walk_cache_rejected():
    with pytest.raises(ValueError):
        PageTable(walk_cache_entries=-1)
