"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.engine import SimulationError


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_callbacks_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call(3e-6, order.append, "c")
    sim.call(1e-6, order.append, "a")
    sim.call(2e-6, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_equal_time_callbacks_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.call(1e-6, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.call(5e-6, fired.append, "early")
    sim.call(50e-6, fired.append, "late")
    sim.run(until=10e-6)
    assert fired == ["early"]
    assert sim.now == 10e-6
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_time_even_with_empty_heap():
    sim = Simulator()
    sim.run(until=1.0)
    assert sim.now == 1.0


def test_at_schedules_absolute_time():
    sim = Simulator()
    fired = []
    sim.at(2e-3, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 2e-3


def test_at_in_the_past_raises():
    sim = Simulator()
    sim.call(1e-3, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5e-3, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call(-1e-9, lambda: None)


def test_stop_halts_dispatch():
    sim = Simulator()
    fired = []
    sim.call(1e-6, fired.append, "a")
    sim.call(2e-6, sim.stop)
    sim.call(3e-6, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_events_dispatched_counter():
    sim = Simulator()
    for _ in range(5):
        sim.call(1e-6, lambda: None)
    sim.run()
    assert sim.events_dispatched == 5


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.call(7e-6, lambda: None)
    assert sim.peek() == pytest.approx(7e-6)


class TestEvent:
    def test_succeed_delivers_value_to_callbacks(self):
        sim = Simulator()
        got = []
        ev = sim.event()
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        assert got == [42]
        assert ev.ok is True

    def test_callback_added_after_trigger_fires_async(self):
        sim = Simulator()
        got = []
        ev = sim.event()
        ev.succeed("v")
        ev.add_callback(lambda e: got.append(e.value))
        assert got == []  # not synchronous
        sim.run()
        assert got == ["v"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_timeout_fires_at_delay(self):
        sim = Simulator()
        got = []
        ev = sim.timeout(5e-6, "done")
        ev.add_callback(lambda e: got.append((sim.now, e.value)))
        sim.run()
        assert got == [(5e-6, "done")]

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        got = []
        e1 = sim.timeout(2e-6, "slowish")
        e2 = sim.timeout(1e-6, "fast")
        sim.any_of([e1, e2]).add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["fast"]

    def test_all_of_collects_all_values(self):
        sim = Simulator()
        got = []
        events = [sim.timeout(i * 1e-6, i) for i in (3, 1, 2)]
        sim.all_of(events).add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [[3, 1, 2]]

    def test_all_of_empty_succeeds_immediately(self):
        sim = Simulator()
        ev = sim.all_of([])
        assert ev.triggered

    def test_any_of_detaches_callbacks_from_losers(self):
        # Regression: any_of used to leave its `fire` closure on every
        # losing event forever.  A long-lived event that loses many
        # races then accumulates dead callbacks — each carrying the
        # whole race's entrant list — until the event finally triggers.
        sim = Simulator()
        long_lived = sim.event()
        for i in range(10_000):
            sim.any_of([long_lived, sim.timeout(1e-9 * (i + 1), i)])
        sim.run()
        assert long_lived._callbacks == [], (
            f"{len(long_lived._callbacks)} leaked race callbacks")

    def test_any_of_winner_value_wins_with_shared_loser(self):
        # Same race shape as the leak test, but checking semantics:
        # every race resolves with its timeout's value, and the shared
        # loser firing later does not re-trigger resolved races.
        sim = Simulator()
        shared = sim.event()
        got = []
        for i in range(50):
            sim.any_of([shared, sim.timeout(1e-9, i)]).add_callback(
                lambda e: got.append(e.value))
        sim.run()
        shared.succeed("late")
        sim.run()
        assert sorted(got) == list(range(50))

    def test_event_recycle_roundtrip(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(7)
        ev.recycle()
        again = sim.event()
        assert again is ev
        assert again.triggered is False
        assert again.value is None

    def test_recycle_with_pending_callbacks_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.add_callback(lambda e: None)
        with pytest.raises(SimulationError):
            ev.recycle()


class TestProcess:
    def test_process_sleeps_on_numeric_yield(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield 1e-6
            times.append(sim.now)
            yield 2e-6
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [0.0, 1e-6, 3e-6]

    def test_process_waits_on_event_and_gets_value(self):
        sim = Simulator()
        got = []

        def proc(ev):
            value = yield ev
            got.append(value)

        ev = sim.event()
        sim.process(proc(ev))
        sim.call(4e-6, ev.succeed, "payload")
        sim.run()
        assert got == ["payload"]
        assert sim.now == 4e-6

    def test_process_return_value_visible_on_done(self):
        sim = Simulator()

        def proc():
            yield 1e-6
            return "result"

        p = sim.process(proc())
        sim.run()
        assert p.done.value == "result"
        assert not p.is_alive

    def test_process_can_wait_on_another_process(self):
        sim = Simulator()
        got = []

        def child():
            yield 2e-6
            return "child-val"

        def parent():
            value = yield sim.process(child())
            got.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert got == [(2e-6, "child-val")]

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield 100e-6
            except Interrupt as intr:
                caught.append((sim.now, intr.cause))

        p = sim.process(proc())
        sim.call(5e-6, p.interrupt, "reason")
        sim.run()
        assert caught == [(5e-6, "reason")]

    def test_interrupt_on_dead_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield 1e-6

        p = sim.process(proc())
        sim.run()
        p.interrupt()  # should not raise
        sim.run()

    def test_failed_event_raises_in_waiting_process(self):
        sim = Simulator()
        caught = []

        def proc(ev):
            try:
                yield ev
            except ValueError as err:
                caught.append(str(err))

        ev = sim.event()
        sim.process(proc(ev))
        sim.call(1e-6, ev.fail, ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_yielding_garbage_fails_the_process(self):
        sim = Simulator()

        def proc():
            yield "not-a-valid-target"

        p = sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()
        assert p.done.triggered
        assert p.done.ok is False

    def test_negative_yield_fails_the_process(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_many_interleaved_processes_deterministic(self):
        def run_once():
            sim = Simulator()
            log = []

            def worker(tag, period):
                for _ in range(3):
                    yield period
                    log.append((sim.now, tag))

            for tag, period in (("a", 1e-6), ("b", 1.5e-6), ("c", 0.7e-6)):
                sim.process(worker(tag, period))
            sim.run()
            return log

        assert run_once() == run_once()
