"""Unit tests for CreditPool, Store, and Gate."""

import pytest

from repro.sim import CreditPool, Gate, Simulator, Store
from repro.sim.engine import SimulationError


class TestCreditPool:
    def test_initial_state(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=4)
        assert pool.available == 4
        assert pool.in_use == 0

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CreditPool(sim, capacity=0)

    def test_try_acquire_and_release(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=2)
        assert pool.try_acquire()
        assert pool.try_acquire()
        assert not pool.try_acquire()
        pool.release()
        assert pool.try_acquire()

    def test_acquire_more_than_capacity_raises(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=2)
        with pytest.raises(SimulationError):
            pool.try_acquire(3)
        with pytest.raises(SimulationError):
            pool.acquire(3, lambda: None)

    def test_over_release_raises(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_acquire_callback_fires_immediately_when_available(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=1)
        fired = []
        pool.acquire(1, lambda: fired.append(sim.now))
        assert fired == [0.0]

    def test_waiters_served_fifo_on_release(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=1)
        order = []
        assert pool.try_acquire()
        pool.acquire(1, lambda: order.append("first"))
        pool.acquire(1, lambda: order.append("second"))
        assert pool.waiting() == 2
        pool.release()
        assert order == ["first"]
        pool.release()
        assert order == ["first", "second"]

    def test_wide_request_blocks_narrow_behind_it(self):
        # FIFO grant order must hold even when a later, smaller request
        # could be satisfied first (no starvation of wide requests).
        sim = Simulator()
        pool = CreditPool(sim, capacity=4)
        order = []
        assert pool.try_acquire(4)
        pool.acquire(3, lambda: order.append("wide"))
        pool.acquire(1, lambda: order.append("narrow"))
        pool.release(2)
        assert order == []  # wide still waiting; narrow must not jump it
        pool.release(1)
        assert order == ["wide"]
        pool.release(1)  # wide holds 3, 1 free -> narrow can go
        assert order == ["wide", "narrow"]

    def test_try_acquire_respects_waiters(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=2)
        assert pool.try_acquire(2)
        pool.acquire(2, lambda: None)
        pool.release(1)
        # One credit free but a waiter queued: try_acquire must fail.
        assert not pool.try_acquire(1)

    def test_mean_in_use_accounting(self):
        sim = Simulator()
        pool = CreditPool(sim, capacity=2)
        sim.call(0.0, pool.try_acquire, 2)
        sim.call(1.0, pool.release, 2)
        sim.run(until=2.0)
        # 2 credits for 1s out of 2s -> mean 1.0
        assert pool.mean_in_use(elapsed=2.0) == pytest.approx(1.0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_then_put_wakes_getter(self):
        sim = Simulator()
        store = Store(sim)
        ev = store.get()
        assert not ev.triggered
        store.put("y")
        assert ev.triggered and ev.value == "y"

    def test_fifo_ordering_of_items_and_getters(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2
        g1, g2 = store.get(), store.get()
        store.put("a")
        store.put("b")
        assert g1.value == "a" and g2.value == "b"

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put(9)
        assert store.try_get() == 9
        assert len(store) == 0

    def test_len_counts_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestGate:
    def test_wait_on_open_gate_succeeds_immediately(self):
        sim = Simulator()
        gate = Gate(sim, open_=True)
        assert gate.wait().triggered

    def test_wait_on_closed_gate_blocks_until_open(self):
        sim = Simulator()
        gate = Gate(sim)
        ev = gate.wait()
        assert not ev.triggered
        gate.open()
        assert ev.triggered

    def test_gate_reuse_after_close(self):
        sim = Simulator()
        gate = Gate(sim, open_=True)
        gate.close()
        ev = gate.wait()
        assert not ev.triggered
        gate.open()
        assert ev.triggered
        assert gate.is_open
