"""Additional engine edge cases: crash propagation, chained waits."""

import pytest

from repro.sim import Simulator


def test_waiting_on_a_crashing_process_propagates():
    sim = Simulator()
    caught = []

    def child():
        yield 1e-6
        raise RuntimeError("child crashed")

    def parent(child_proc):
        try:
            yield child_proc
        except RuntimeError as err:
            caught.append(str(err))

    proc = None

    def boot():
        nonlocal proc
        proc = sim.process(child())
        sim.process(parent(proc))

    sim.call(0.0, boot)
    with pytest.raises(RuntimeError):
        sim.run()
    # The crash is re-raised out of run(); the parent still got it.
    sim.run()
    assert caught == ["child crashed"]
    assert proc.done.ok is False


def test_process_chain_passes_values():
    sim = Simulator()
    results = []

    def stage(value):
        yield 1e-6
        return value * 2

    def pipeline():
        a = yield sim.process(stage(3))
        b = yield sim.process(stage(a))
        results.append(b)

    sim.process(pipeline())
    sim.run()
    assert results == [12]


def test_event_callbacks_run_within_same_timestamp():
    sim = Simulator()
    log = []
    ev = sim.event()
    ev.add_callback(lambda e: log.append(("cb", sim.now)))
    sim.call(3e-6, ev.succeed)
    sim.call(3e-6, lambda: log.append(("after", sim.now)))
    sim.run()
    assert log == [("cb", 3e-6), ("after", 3e-6)]


def test_timeout_value_roundtrip():
    sim = Simulator()
    seen = []
    sim.timeout(1e-6, {"key": 1}).add_callback(
        lambda e: seen.append(e.value))
    sim.run()
    assert seen == [{"key": 1}]


def test_interrupt_during_timeout_reschedules_cleanly():
    sim = Simulator()
    timeline = []

    def proc():
        try:
            yield 100e-6
        except Exception:
            timeline.append(("interrupted", sim.now))
        yield 5e-6
        timeline.append(("done", sim.now))

    p = sim.process(proc())
    sim.call(10e-6, p.interrupt, "stop-waiting")
    sim.run()
    assert [tag for tag, _ in timeline] == ["interrupted", "done"]
    assert timeline[0][1] == pytest.approx(10e-6)
    assert timeline[1][1] == pytest.approx(15e-6)


def test_run_with_until_before_now_is_noop():
    sim = Simulator()
    sim.call(1e-3, lambda: None)
    sim.run(until=2e-3)
    # Running again to an earlier point must not rewind time.
    sim.run(until=1e-3)
    assert sim.now == 2e-3


def test_stop_inside_process_halts():
    sim = Simulator()
    progressed = []

    def proc():
        yield 1e-6
        sim.stop()
        yield 1e-6
        progressed.append(True)

    sim.process(proc())
    sim.run()
    assert progressed == []
    sim.run()
    assert progressed == [True]


def test_zero_delay_self_reschedule_is_bounded_by_until():
    # A callback that reschedules itself at +0 must still respect the
    # run(until=...) boundary through the stop flag (no livelock).
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 100:
            sim.call(1e-9, tick)

    sim.call(0.0, tick)
    sim.run(until=1.0)
    assert count[0] == 100
