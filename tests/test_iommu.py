"""Unit tests for the IOMMU translation path."""

import pytest

from repro.core.config import IommuConfig, MemoryConfig
from repro.host.addressing import PAGE_4K, Region
from repro.host.iommu import Iommu, ZERO_TRANSLATION
from repro.host.iotlb import Iotlb
from repro.host.memory import MemoryController
from repro.host.pagetable import PageTable, TranslationFault
from repro.sim import Simulator


def make_iommu(enabled=True, iotlb_entries=8, device_tlb=0,
               n_pages=16):
    sim = Simulator()
    memory = MemoryController(sim, MemoryConfig())
    table = PageTable(walk_cache_entries=8)
    region = Region(base=0, size=n_pages * PAGE_4K, page_size=PAGE_4K)
    table.register_region(region)
    config = IommuConfig(enabled=enabled, iotlb_entries=iotlb_entries,
                         iotlb_ways=None,
                         device_tlb_entries=device_tlb)
    iommu = Iommu(config, Iotlb(iotlb_entries), table, memory)
    return sim, iommu, region


def test_disabled_iommu_is_free():
    _, iommu, region = make_iommu(enabled=False)
    result = iommu.translate(region.page_keys()[:4])
    assert result is ZERO_TRANSLATION
    assert result.latency == 0.0
    assert iommu.translations == 0


def test_cold_translation_misses_and_pays_walk():
    _, iommu, region = make_iommu()
    result = iommu.translate([region.page_keys()[0]])
    assert result.iotlb_misses == 1
    assert result.walk_memory_accesses >= 1
    assert result.latency > 0


def test_warm_translation_hits_at_hit_latency():
    _, iommu, region = make_iommu()
    page = region.page_keys()[0]
    iommu.translate([page])
    result = iommu.translate([page])
    assert result.iotlb_misses == 0
    assert result.latency == pytest.approx(
        iommu.config.iotlb_hit_latency)


def test_multi_page_translation_accumulates():
    _, iommu, region = make_iommu()
    pages = region.page_keys()[:3]
    result = iommu.translate(pages)
    assert result.accesses == 3
    assert result.iotlb_misses == 3


def test_miss_latency_scales_with_memory_contention():
    sim_a, iommu_a, region_a = make_iommu()
    cold_a = iommu_a.translate([region_a.page_keys()[0]])

    sim_b = Simulator()
    memory_b = MemoryController(
        sim_b, MemoryConfig(achievable_Bps=100e9))
    memory_b.register_constant("stream", "cpu", 150e9)
    sim_b.run(until=1e-3)
    table = PageTable(walk_cache_entries=8)
    region = Region(base=0, size=16 * PAGE_4K, page_size=PAGE_4K)
    table.register_region(region)
    iommu_b = Iommu(IommuConfig(iotlb_ways=None), Iotlb(8), table,
                    memory_b)
    cold_b = iommu_b.translate([region.page_keys()[0]])
    assert cold_b.latency > cold_a.latency


def test_translating_unmapped_page_faults():
    _, iommu, _ = make_iommu()
    with pytest.raises(TranslationFault):
        iommu.translate([0xdeadbeef000])


def test_misses_per_translation_metric():
    _, iommu, region = make_iommu()
    page = region.page_keys()[0]
    iommu.translate([page])   # 1 miss
    iommu.translate([page])   # 0 misses
    assert iommu.misses_per_translation() == pytest.approx(0.5)


def test_reset_stats_preserves_cache_state():
    _, iommu, region = make_iommu()
    page = region.page_keys()[0]
    iommu.translate([page])
    iommu.reset_stats()
    assert iommu.translations == 0
    result = iommu.translate([page])
    assert result.iotlb_misses == 0  # cache contents survived


def test_device_tlb_absorbs_hits():
    _, iommu, region = make_iommu(device_tlb=16)
    page = region.page_keys()[0]
    iommu.translate([page])   # populates both TLBs
    iommu.iotlb.invalidate_all()
    result = iommu.translate([page])
    # Device TLB (ATS) hit: no IOTLB traffic, no walk.
    assert result.iotlb_misses == 0


def test_capacity_thrash_produces_steady_misses():
    _, iommu, region = make_iommu(iotlb_entries=4, n_pages=16)
    pages = region.page_keys()  # 16 pages through a 4-entry IOTLB
    for _ in range(5):
        iommu.translate(pages)
    assert iommu.misses_per_translation() > 10  # ~16 misses/translation
