"""Unit tests for series, text plots, and shape-check plumbing."""

import pytest

from repro.analysis.compare import Finding, check_figure
from repro.analysis.figures import FigureData, spearman
from repro.analysis.series import Series, series_from_table
from repro.analysis.text_plots import line_plot, scatter_plot
from repro.core.results import ExperimentResult, ResultTable


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("bad", (1, 2), (1,))

    def test_sorted_by_x(self):
        series = Series("s", (3, 1, 2), (30, 10, 20)).sorted_by_x()
        assert series.x == (1, 2, 3)
        assert series.y == (10, 20, 30)

    def test_min_max(self):
        series = Series("s", (1, 2), (5, -1))
        assert series.ymax() == 5
        assert series.ymin() == -1

    def test_from_table_with_filter(self):
        table = ResultTable([
            ExperimentResult({"cores": 2, "iommu": True}, {"tput": 20.0}),
            ExperimentResult({"cores": 4, "iommu": True}, {"tput": 40.0}),
            ExperimentResult({"cores": 2, "iommu": False}, {"tput": 25.0}),
        ])
        series = series_from_table(table, "cores", "tput", "on",
                                   iommu=True)
        assert series.x == (2.0, 4.0)
        assert series.y == (20.0, 40.0)


class TestTextPlots:
    def test_line_plot_contains_series_and_legend(self):
        out = line_plot(
            [Series("alpha", (1, 2, 3), (1, 4, 9))],
            title="squares", x_label="n", y_label="n^2")
        assert "squares" in out
        assert "alpha" in out
        assert "o" in out

    def test_line_plot_multiple_series_distinct_markers(self):
        out = line_plot([
            Series("a", (1, 2), (1, 2)),
            Series("b", (1, 2), (2, 1)),
        ])
        assert "o = a" in out
        assert "x = b" in out

    def test_line_plot_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot([])

    def test_flat_series_does_not_crash(self):
        out = line_plot([Series("flat", (1, 2, 3), (5, 5, 5))])
        assert "flat" in out

    def test_scatter_plot(self):
        out = scatter_plot([(0.1, 0.0), (0.9, 0.03)],
                           title="fleet")
        assert "fleet" in out
        assert "2 hosts" in out

    def test_scatter_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot([])


class TestSpearman:
    def test_perfect_positive(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert spearman([1, 2, 3], [5, 5, 5]) == 0.0

    def test_ties_handled(self):
        value = spearman([1, 1, 2, 3], [1, 2, 3, 4])
        assert -1.0 <= value <= 1.0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            spearman([1], [1, 2])


class TestFigureData:
    def make_fig(self):
        return FigureData(
            name="figure1",
            title="t",
            panels={"p": ("x", "y", [Series("s", (1, 2), (3, 4))])},
            scatter=[(0.5, 0.01)],
            notes={"spearman": 0.9, "low_util_hosts_with_drops": 2,
                   "hosts_with_drops": 3, "hosts": 10,
                   "drop_fraction_high_util": 0.8,
                   "drop_fraction_low_util": 0.1},
        )

    def test_render_includes_everything(self):
        out = self.make_fig().render()
        assert "figure1" in out
        assert "notes:" in out

    def test_csv_export(self, tmp_path):
        paths = self.make_fig().to_csv_dir(tmp_path)
        assert len(paths) == 2  # panel + scatter
        panel_csv = (tmp_path / "figure1_p.csv").read_text()
        assert panel_csv.splitlines()[0] == "x,s"

    def test_check_figure_dispatch(self):
        findings = check_figure(self.make_fig())
        assert all(isinstance(f, Finding) for f in findings)
        assert all(f.passed for f in findings)

    def test_check_figure_unknown_name(self):
        fig = self.make_fig()
        fig.name = "figure99"
        with pytest.raises(ValueError):
            check_figure(fig)

    def test_finding_str_format(self):
        f = Finding("figure1", "criterion", True, "detail")
        assert str(f) == "[PASS] figure1: criterion (detail)"
        f2 = Finding("figure1", "criterion", False, "detail")
        assert "[FAIL]" in str(f2)
