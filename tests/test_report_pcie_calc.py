"""Tests for the markdown report generator and the PCIe goodput
calculator."""

import json

import pytest

from repro.analysis.report import (
    load_results,
    metrics_section,
    render_report,
    write_report,
)
from repro.host.pcie import pcie_goodput_bps, pcie_raw_bps


def sample_payload(name="figure3", passed=True):
    return {
        "name": name,
        "title": "a title",
        "elapsed_s": 12.3,
        "notes": {"hosts": 10} if name == "figure1" else {},
        "panels": {
            "throughput": {
                "x_label": "cores",
                "y_label": "Gbps",
                "series": [
                    {"label": "ON", "x": [2, 4], "y": [20.0, 40.0]},
                    {"label": "OFF", "x": [2, 4], "y": [22.0, 44.0]},
                ],
            }
        },
        "findings": [
            {"criterion": "some claim", "passed": passed,
             "detail": "detail text"},
        ],
    }


class TestReport:
    def test_load_results_requires_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path)

    def test_load_results_ordered(self, tmp_path):
        for name in ("figure5", "figure3"):
            (tmp_path / f"{name}.json").write_text(
                json.dumps(sample_payload(name)))
        results = load_results(tmp_path)
        assert list(results) == ["figure3", "figure5"]

    def test_render_contains_findings_and_tables(self):
        text = render_report({"figure3": sample_payload()})
        assert "Shape criteria passing: **1/1**" in text
        assert "[PASS]" in text
        assert "| cores | ON | OFF |" in text
        assert "| 2 | 20 | 22 |" in text

    def test_render_counts_failures(self):
        text = render_report(
            {"figure3": sample_payload(passed=False)})
        assert "**0/1**" in text
        assert "[FAIL]" in text

    def test_write_report(self, tmp_path):
        (tmp_path / "figure3.json").write_text(
            json.dumps(sample_payload()))
        path = write_report(tmp_path)
        assert path.name == "REPORT.md"
        assert "figure3" in path.read_text()

    def test_metrics_section_renders_headline_counters(self):
        snapshot = {
            "counters": {"nic.dropped_packets": 42,
                         "transport.retransmissions": 7},
            "gauges": {"nic.drop_rate": 0.015,
                       "host.iotlb_misses_per_packet": 3.2,
                       "memory.bandwidth_GBps": 31.5},
            "histograms": {"nic.host_delay_us": {
                "count": 100, "p50": 4.0, "p99": 19.0}},
            "meta": {"params": {"cores": 12, "iommu": True}},
        }
        text = "\n".join(metrics_section(snapshot))
        assert "| NIC drop rate | 0.015 |" in text
        assert "| IOTLB misses/packet | 3.2 |" in text
        assert "| host delay p99 (us) | 19 |" in text
        assert "cores=12" in text

    def test_write_report_picks_up_metrics_json(self, tmp_path):
        (tmp_path / "figure3.json").write_text(
            json.dumps(sample_payload()))
        (tmp_path / "metrics.json").write_text(json.dumps({
            "counters": {"nic.dropped_packets": 5},
            "gauges": {}, "histograms": {}, "meta": {},
        }))
        text = write_report(tmp_path).read_text()
        assert "## Metrics snapshot" in text
        assert "| dropped packets | 5 |" in text


class TestPcieCalculator:
    def test_gen3_x16_matches_the_papers_numbers(self):
        # Paper: "maximum 128Gbps theoretical capacity", "achievable
        # PCIe goodput is only ~110Gbps".
        assert pcie_raw_bps(3, 16) == pytest.approx(126e9, rel=0.02)
        assert pcie_goodput_bps(3, 16, 256) == pytest.approx(
            110e9, rel=0.02)

    def test_generation_scaling(self):
        assert pcie_goodput_bps(4, 16) == pytest.approx(
            2 * pcie_goodput_bps(3, 16))
        assert pcie_goodput_bps(5, 16) == pytest.approx(
            4 * pcie_goodput_bps(3, 16))

    def test_lane_scaling(self):
        assert pcie_goodput_bps(3, 8) == pytest.approx(
            pcie_goodput_bps(3, 16) / 2)

    def test_larger_tlp_payload_improves_efficiency(self):
        assert pcie_goodput_bps(3, 16, 512) > pcie_goodput_bps(3, 16, 256)

    def test_gen12_coding_penalty(self):
        # 8b/10b coding: 20% off the wire rate.
        assert pcie_raw_bps(1, 16) == pytest.approx(
            2.5e9 * 0.8 * 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            pcie_raw_bps(gen=7)
        with pytest.raises(ValueError):
            pcie_raw_bps(lanes=3)
        with pytest.raises(ValueError):
            pcie_goodput_bps(max_payload=0)
